"""Command-line interface for the aging-aware CAD flow.

Subcommands mirror the flow's stages so artefacts can be produced,
inspected and re-analysed from the shell::

    python -m repro.cli compile  kernel.c -o design.json [--capacity 16]
    python -m repro.cli place    design.json --fabric 4x4 -o floorplan.json
    python -m repro.cli remap    design.json floorplan.json -o remapped.json \
                                 [--mode rotate] [--time-limit 30]
    python -m repro.cli analyze  design.json floorplan.json
    python -m repro.cli flow     kernel.c --fabric 4x4 [-o result.json]
    python -m repro.cli bench    one B13 [--scaled 8] [--mode rotate]
    python -m repro.cli bench    run [-o BENCH.json] [--benchmarks B1,B4]
    python -m repro.cli bench    compare baseline.json candidate.json
    python -m repro.cli verify   result.json [--certify-backend branch-bound]
    python -m repro.cli trace    summarize trace.jsonl [--json]
    python -m repro.cli explain  result.json [trace.jsonl] [-o report.html]
    python -m repro.cli explain  design.json --probe-infeasible [--fabric 4x4]
    python -m repro.cli serve    [--state-dir DIR] [--port 0] [--concurrency 2]

``compile`` accepts a mini-C file or a named library kernel (fir8,
matvec4, checksum, sobel3).  ``analyze`` prints CPD, stress and MTTF for
any (design, floorplan) pair — so saved artefacts from different runs can
be compared without re-solving anything.

Observability (``flow``, ``remap`` and ``bench``; docs/observability.md):

``--trace FILE.jsonl``
    Record the run's span tree, events and final metrics as JSONL;
    inspect offline with ``repro trace summarize FILE.jsonl``.
``--metrics``
    Print the metrics-registry snapshot (counters/gauges/histograms)
    after the command finishes.
``--log-level LEVEL``
    Level of the ``repro.*`` stderr logger (default ``warning``).
``--solver-progress``
    Render a live stderr line (incumbent/bound/gap/nodes) during long
    MILP solves (HiGHS prints its own branch-and-cut log).
``--profile FILE.pstats``
    cProfile the whole command, write pstats to FILE and print the
    top cumulative-time hotspots.

``serve`` runs the long-lived floorplanning service: an HTTP front end
with admission control, a crash-safe persistent artifact cache, durable
exactly-once job journaling and graceful SIGTERM drain (see
docs/robustness.md, "Serving floorplans").  The listener address is
published to ``<state-dir>/endpoint.json`` (``--port 0`` = ephemeral).

``bench run`` executes the smoke benchmark suite and writes a
schema-versioned ``BENCH_<timestamp>.json`` performance record;
``bench compare`` diffs two records and exits 3 when a configured
regression threshold is exceeded (``--warn-only`` downgrades to exit 0).
The bare form ``bench B13`` remains an alias for ``bench one B13``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.arch.fabric import Fabric
from repro.benchgen.sources import KERNELS, kernel_source
from repro.benchgen.suite import entry as suite_entry
from repro.benchgen.synth import build_benchmark
from repro.core.algorithm1 import Algorithm1Config, run_algorithm1
from repro.core.flow import AgingAwareFlow, FlowConfig
from repro.core.remap import RemapConfig
from repro.errors import ReproError
from repro.explain import set_explain
from repro.hls.lower import compile_source
from repro.hls.schedule import schedule_dfg
from repro.hls.allocate import tech_map
from repro.io.serialize import (
    flow_summary_to_dict,
    load_design,
    load_floorplan,
    load_json,
    save_design,
    save_floorplan,
    save_json,
)
from repro.obs import (
    JsonlSink,
    add_sink,
    configure_logging,
    convergence_rows,
    registry,
    remove_sink,
    set_progress,
    span,
    summarize_trace,
)
from repro.place.baseline import place_baseline
from repro.report.tables import format_mapping, format_table
from repro.resilience.deadline import Deadline


def _deadline_of(args) -> Deadline | None:
    seconds = getattr(args, "deadline", None)
    return Deadline.after(seconds) if seconds is not None else None


def _parse_fabric(text: str) -> Fabric:
    try:
        rows, cols = (int(part) for part in text.lower().split("x"))
    except ValueError as exc:
        raise SystemExit(f"invalid fabric {text!r}; expected e.g. 4x4") from exc
    return Fabric(rows, cols)


def _load_kernel(argument: str) -> tuple[str, str]:
    path = pathlib.Path(argument)
    if path.exists():
        return path.stem, path.read_text()
    if argument in KERNELS:
        return argument, kernel_source(argument)
    raise SystemExit(
        f"{argument!r} is neither a file nor a library kernel "
        f"({sorted(KERNELS)})"
    )


def _metrics_rows() -> list[list[object]]:
    """Registry snapshot as (metric, kind, value) table rows."""
    rows: list[list[object]] = []
    for name, data in registry().snapshot().items():
        kind = data["kind"]
        if kind == "histogram":
            value = (
                f"count={data['count']} mean={data['mean']:.4f} "
                f"p50={data['p50']:.4f} p95={data['p95']:.4f} "
                f"min={data['min']:.4f} max={data['max']:.4f}"
            )
        else:
            value = data["value"]
        rows.append([name, kind, value])
    return rows


def _remap_config(args) -> RemapConfig:
    """Build the solver config from shared CLI flags (incl. portfolio)."""
    kwargs: dict = {"time_limit_s": args.time_limit}
    if getattr(args, "portfolio", False):
        kwargs["portfolio"] = True
    lanes = getattr(args, "lanes", None)
    if lanes:
        kwargs["lanes"] = tuple(
            name.strip() for name in lanes.split(",") if name.strip()
        )
    hedge_delay = getattr(args, "hedge_delay", None)
    if hedge_delay is not None:
        kwargs["hedge_delay_s"] = hedge_delay
    return RemapConfig(**kwargs)


def _flow_config(args) -> FlowConfig:
    return FlowConfig(
        algorithm1=Algorithm1Config(
            mode=args.mode,
            certify=not getattr(args, "no_certify", False),
            remap=_remap_config(args),
        )
    )


# -- subcommands ---------------------------------------------------------------


def cmd_compile(args) -> int:
    name, source = _load_kernel(args.source)
    dfg = compile_source(source, name)
    schedule = schedule_dfg(dfg, capacity=args.capacity)
    design = tech_map(schedule)
    save_design(design, args.output)
    print(
        f"{name}: {design.num_ops} ops in {design.num_contexts} contexts "
        f"-> {args.output}"
    )
    return 0


def cmd_place(args) -> int:
    design = load_design(args.design)
    fabric = _parse_fabric(args.fabric)
    floorplan = place_baseline(design, fabric)
    save_floorplan(floorplan, args.output)
    print(
        f"placed {design.name} on {fabric.rows}x{fabric.cols} "
        f"(utilization {floorplan.utilization():.0%}) -> {args.output}"
    )
    return 0


def cmd_remap(args) -> int:
    design = load_design(args.design)
    original = load_floorplan(args.floorplan)
    config = Algorithm1Config(
        mode=args.mode,
        certify=not args.no_certify,
        remap=_remap_config(args),
    )
    result = run_algorithm1(
        design, original.fabric, original, config, deadline=_deadline_of(args)
    )
    save_floorplan(result.floorplan, args.output)
    print(format_mapping("Re-mapping", {
        "fell back": result.fell_back,
        "degradation": result.degradation,
        "certified": result.certified,
        "iterations": result.iterations,
        "original CPD (ns)": result.original_cpd_ns,
        "final CPD (ns)": result.final_cpd_ns,
        "ST_target (ns)": result.st_target_ns,
        "output": str(args.output),
    }))
    return 0 if not result.fell_back else 2


def cmd_analyze(args) -> int:
    from repro.aging.mttf import compute_mttf
    from repro.aging.stress import compute_stress_map
    from repro.thermal.hotspot import ThermalSimulator
    from repro.timing.sta import analyze

    design = load_design(args.design)
    floorplan = load_floorplan(args.floorplan)
    report = analyze(design, floorplan)
    stress = compute_stress_map(design, floorplan)
    thermal = ThermalSimulator(floorplan.fabric).simulate(
        stress.duty_per_context()
    )
    mttf = compute_mttf(stress, thermal.accumulated_k)
    print(format_mapping(f"{design.name} on this floorplan", {
        "CPD (ns)": report.cpd_ns,
        "max accumulated stress (ns)": stress.max_accumulated_ns,
        "mean accumulated stress (ns)": stress.mean_accumulated_ns,
        "peak temperature (K)": thermal.peak_k,
        "MTTF (years)": mttf.mttf_years,
        "limiting PE": mttf.limiting_pe,
    }))
    return 0


def cmd_flow(args) -> int:
    name, source = _load_kernel(args.source)
    fabric = _parse_fabric(args.fabric)
    with span("hls_compile", kernel=name):
        dfg = compile_source(source, name)
        design = tech_map(schedule_dfg(dfg, capacity=fabric.num_pes))
    result = AgingAwareFlow(_flow_config(args)).run(
        design, fabric, deadline=_deadline_of(args)
    )
    print(format_mapping(f"flow: {name}", {
        "MTTF increase": f"{result.mttf_increase:.2f}x",
        "CPD preserved": result.cpd_preserved,
        "certified": result.remap.certified,
        "degradation": result.remap.degradation,
        "contexts": design.num_contexts,
        "utilization": f"{result.original.floorplan.utilization():.0%}",
    }))
    if args.output:
        save_json(flow_summary_to_dict(result), args.output)
        print(f"full record -> {args.output}")
    return 0


def cmd_bench(args) -> int:
    bench = suite_entry(args.name)
    if args.scaled:
        bench = bench.scaled(args.scaled)
    design, fabric = build_benchmark(bench.spec())
    result = AgingAwareFlow(_flow_config(args)).run(
        design, fabric, deadline=_deadline_of(args)
    )
    reference = bench.freeze_ref if args.mode == "freeze" else bench.rotate_ref
    print(format_mapping(f"benchmark {bench.name} ({args.mode})", {
        "MTTF increase": f"{result.mttf_increase:.2f}x",
        "paper reference": f"{reference:.2f}x",
        "CPD preserved": result.cpd_preserved,
        "fell back": result.remap.fell_back,
        "degradation": result.remap.degradation,
    }))
    return 0


def cmd_bench_run(args) -> int:
    from repro.obs import perf

    names = tuple(args.benchmarks.split(",")) if args.benchmarks else None
    record = perf.run_suite(
        names,
        mode=args.mode,
        time_limit_s=args.time_limit,
        max_fabric=args.scaled,
        seed=args.seed,
        jobs=args.jobs,
    )
    output = args.output or f"BENCH_{record['timestamp']}.json"
    save_json(record, output)
    print(format_table(
        ["bench", "fabric", "wall_s", "peak_mb", "solves", "nodes",
         "mttf_x", "degradation"],
        perf.bench_table_rows(record),
    ))
    print(f"\nbench record -> {output}")
    return 0


def cmd_bench_compare(args) -> int:
    from repro.obs import perf

    baseline = load_json(args.baseline)
    candidate = load_json(args.candidate)
    thresholds = perf.CompareThresholds(
        wall_rel=args.threshold_wall,
        mem_rel=args.threshold_mem,
        nodes_rel=args.threshold_nodes,
        stage_rel=args.threshold_stage,
    )
    result = perf.compare_records(baseline, candidate, thresholds)
    if result.rows:
        print(format_table(
            ["bench", "base_s", "cand_s", "wall", "base_mb", "cand_mb",
             "base_nodes", "cand_nodes"],
            result.rows,
        ))
    if result.stage_rows:
        print("\nevaluation stages")
        print("-----------------")
        print(format_table(
            ["bench", "stage", "base_s", "cand_s", "ratio"],
            result.stage_rows,
        ))
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    failed = False
    if result.regressions:
        print("\nREGRESSIONS")
        for regression in result.regressions:
            print(f"  {regression.describe()}")
        if args.warn_only:
            print("(--warn-only: not failing the run)", file=sys.stderr)
        else:
            failed = True
    if result.stage_regressions:
        print("\nEVALUATION-STAGE REGRESSIONS")
        for regression in result.stage_regressions:
            print(f"  {regression.describe()}")
        if args.gate_stages:
            # The kernels perf gate: stage regressions fail the run even
            # under --warn-only (a silent scalar fallback must not pass CI).
            failed = True
        else:
            print("(not gated; pass --gate-stages to fail on these)",
                  file=sys.stderr)
    if failed:
        return 3
    if not result.regressions and not result.stage_regressions:
        print("\nno regressions")
    return 0


def cmd_verify(args) -> int:
    from repro.verify import certify_artifact

    document = load_json(args.record)
    report = certify_artifact(
        document,
        certify_backend=args.certify_backend,
        sample=args.sample,
        seed=args.seed,
        time_limit_s=args.time_limit,
    )
    cert = report["certificate"]
    fields = {
        "certificate": "PASS" if not cert["violations"] else "FAIL",
        "checks": len(cert["checks"]),
        "violations": len(cert["violations"]),
    }
    differential = report["differential"]
    if differential is not None:
        fields["differential"] = (
            "agree" if differential["ok"] else "MISMATCH"
        )
        fields["sampled contexts"] = ", ".join(
            str(c) for c in differential["sampled_contexts"]
        )
    print(format_mapping(f"verify: {report['benchmark']}", fields))
    for check in cert["checks"]:
        print(f"  [pass] {check}")
    for violation in cert["violations"]:
        print(
            f"  [FAIL] {violation['kind']}[{violation['subject']}]: "
            f"{violation['detail']}"
        )
    if differential is not None:
        for context, result in differential["contexts"].items():
            objectives = " ".join(
                f"{backend}={value}"
                for backend, value in result["objectives"].items()
            )
            status = "ok" if result["ok"] else "MISMATCH"
            print(f"  [ctx {context}] {status}: {objectives}")
    return 0 if report["ok"] else 4


def _print_explain(entry: dict, indent: str = "  ") -> None:
    """Render one ``algorithm1.explain`` record for the terminal."""
    entry = dict(entry)
    iis = entry.pop("iis", None)
    culprit = entry.pop("culprit", None)
    print(indent + " ".join(f"{k}={v}" for k, v in entry.items()))
    if culprit:
        print(
            f"{indent}  culprit path: context={culprit.get('context')} "
            f"ops={culprit.get('ops')} delay={culprit.get('delay_ns')}ns"
        )
    if iis:
        members = iis.get("members") or []
        print(
            f"{indent}  IIS: status={iis.get('status')} "
            f"minimal={iis.get('minimal')} verified={iis.get('verified')} "
            f"({len(members)} member(s), {iis.get('probes')} probes)"
        )
        for member in members:
            tags = ", ".join(
                f"{k}={v}" for k, v in (member.get("tags") or {}).items()
            )
            line = (
                f"{indent}    - {member.get('name')} "
                f"{member.get('sense')} {member.get('rhs')}"
            )
            print(line + (f"  [{tags}]" if tags else ""))


def cmd_explain(args) -> int:
    """Explain a saved run (flow record and/or trace) or probe an IIS."""
    from repro.obs import report as report_mod
    from repro.obs.trace import summarize_trace as _summarize

    if args.probe_infeasible:
        return _cmd_explain_probe(args)
    record = None
    trace_summary = None
    for path in args.artifacts:
        document = None
        if not str(path).endswith(".jsonl"):
            try:
                document = load_json(path)
            except (ReproError, ValueError):
                document = None
        if document is not None and document.get("kind") == "flow_result":
            record = document
        else:
            trace_summary = _summarize(path)
    if record is None and trace_summary is None:
        print("error: no flow record or trace found in arguments",
              file=sys.stderr)
        return 1
    report = report_mod.build_report(record=record, trace=trace_summary)
    fmt = args.format
    if fmt is None and args.output:
        suffix = pathlib.Path(args.output).suffix.lower()
        fmt = "html" if suffix in (".html", ".htm") else "markdown"
    rendered = report.render(fmt or "markdown")
    if args.output:
        pathlib.Path(args.output).write_text(rendered, encoding="utf-8")
        print(f"report ({len(report.sections)} sections) -> {args.output}")
    else:
        print(rendered)
    return 0


def _cmd_explain_probe(args) -> int:
    """Forced-infeasible IIS demonstration on a saved design.

    Builds the pigeonhole stress probe (provably infeasible), extracts an
    IIS, independently re-verifies it, and prints the conflict in domain
    terms.  Exit 0 only when the IIS is found *and* certified.
    """
    from repro.explain import find_iis, verify_iis
    from repro.explain.probe import build_infeasible_stress_model

    design = load_design(args.artifacts[0])
    fabric = _parse_fabric(args.fabric)
    model, st_target = build_infeasible_stress_model(
        design, fabric, factor=args.probe_factor
    )
    print(
        f"probe: {design.name} on {fabric.rows}x{fabric.cols}, "
        f"ST_target={st_target:.4g} ns (below the mean per-PE load "
        "— infeasible by pigeonhole)"
    )
    iis = find_iis(model, time_limit_s=args.time_limit)
    print(iis.describe())
    if iis.status != "iis":
        return 5
    certified = verify_iis(model, iis, time_limit_s=args.time_limit)
    print(
        "independent re-check: members-only infeasible and every "
        "single-member drop feasible"
        if certified
        else "independent re-check FAILED"
    )
    return 0 if certified else 5


def cmd_trace_summarize(args) -> int:
    summary = summarize_trace(args.file)
    if args.json:
        print(json.dumps(
            summary.to_dict(), indent=2, sort_keys=True, default=str
        ))
        return 0
    print(format_table(
        ["stage", "count", "wall_s", "share_%"], summary.stage_table()
    ))
    print(
        f"\ntotal wall time {summary.total_s:.3f}s "
        f"({summary.records} records, {len(summary.events)} events, "
        f"{len(summary.degradations)} degradation event(s))"
    )
    evaluation_rows = summary.evaluation_table()
    if evaluation_rows:
        print("\nevaluation stages (aggregated)")
        print("------------------------------")
        print(format_table(
            ["stage", "count", "wall_s", "share_%"], evaluation_rows
        ))
        kernel_rows = [
            [name, data.get("count", data.get("value", 0)),
             round(float(data.get("sum", data.get("value", 0.0))), 4)]
            for name, data in summary.kernel_metrics().items()
        ]
        if kernel_rows:
            print(format_table(
                ["kernel metric", "count", "total"], kernel_rows
            ))
    if summary.solves:
        print("\nconvergence (per solve)")
        print("-----------------------")
        print(format_table(
            ["model", "backend", "kind", "status", "nodes", "incumbent",
             "bound", "gap_%", "wall_s"],
            convergence_rows(summary.solves),
        ))
    for run in summary.alg1_runs:
        trajectory = " -> ".join(
            f"{st:.3f}[{verdict}]" for st, verdict in zip(
                run.get("st_trajectory", []), run.get("verdicts", [])
            )
        )
        print()
        print(format_mapping(
            f"algorithm1: {run.get('benchmark', '?')}", {
                "degradation": run.get("degradation"),
                "ST range (ns)": (
                    f"[{run.get('st_low_ns', 0.0):.3f}, "
                    f"{run.get('st_up_ns', 0.0):.3f}]"
                ),
                "bisection steps": run.get("bisection_steps"),
                "ILP bumps": run.get("ilp_bumps"),
                "delta (ns)": run.get("delta_ns"),
                "iterations": run.get("iterations"),
                "relaxations": run.get("relaxations"),
                "ST trajectory": trajectory or "-",
                "final ST_target (ns)": run.get("final_st_target_ns"),
                "solves": run.get("solves"),
                "total nodes": run.get("total_nodes"),
                "max MIP gap": run.get("max_mip_gap"),
                "certifications": run.get("certifications"),
                "cert failures": run.get("cert_failures"),
                "cert cold rebuilds": run.get("cert_cold_rebuilds"),
            }
        ))
    if summary.races:
        print("\nportfolio races (per lane)")
        print("--------------------------")
        print(format_table(
            ["model", "winner", "lane", "verdict", "start_s", "wall_s",
             "cancelled_s"],
            summary.race_table(),
        ))
    if summary.explains:
        print("\nexplanations (why iterations were rejected / the run ended)")
        print("-" * 58)
        for entry in summary.explains:
            _print_explain(entry)
    if summary.sweep_entries:
        print("\nsweep entries")
        print("-------------")
        print(format_table(["entry", "verdict"], summary.verdict_table()))
    if summary.degradations:
        rows = []
        for record in summary.degradations:
            attrs = record.get("attrs") or {}
            rows.append([
                record["name"],
                " ".join(f"{k}={v}" for k, v in attrs.items()),
            ])
        print("\ndegradations")
        print("------------")
        print(format_table(["event", "detail"], rows))
    if summary.events:
        print("\nevents")
        print("------")
        for record in summary.events:
            attrs = record.get("attrs") or {}
            rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
            print(f"{record['name']}  parent={record['parent']}  {rendered}")
    if summary.metrics:
        rows = []
        for name, data in summary.metrics.items():
            kind = data.get("kind", "?")
            if kind == "histogram":
                value = (
                    f"count={data.get('count')} mean={data.get('mean', 0.0):.4f} "
                    f"max={data.get('max', 0.0):.4f}"
                )
            else:
                value = data.get("value")
            rows.append([name, kind, value])
        print()
        print(format_table(["metric", "kind", "value"], rows))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import AdmissionConfig, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir,
        concurrency=args.concurrency,
        retries=args.retries,
        attempt_timeout_s=args.attempt_timeout,
        drain_grace_s=args.drain_grace,
        certify_cached=not args.no_certify_cache,
        admission=AdmissionConfig(
            max_queue=args.max_queue,
            tenant_queue=args.tenant_queue,
            tenant_concurrency=args.tenant_concurrency,
            retry_after_s=args.retry_after,
        ),
    )
    return asyncio.run(_serve_until_signalled(config, args.host, args.port))


async def _serve_until_signalled(config, host: str, port: int) -> int:
    """Body of ``repro serve``: run until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal

    from repro.service import FloorplanService, ServiceServer

    service = FloorplanService(config)
    await service.start()
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    print(
        f"serving on http://{server.host}:{server.port} "
        f"(state: {config.state_dir}, endpoint: {server.endpoint_path()})",
        file=sys.stderr, flush=True,
    )
    await stop.wait()
    # Drain: stop intake (new submissions shed with 503 "draining") but
    # keep answering probes while in-flight jobs finish within the grace
    # budget; whatever does not finish stays journaled for a restart.
    print("signal received; draining...", file=sys.stderr, flush=True)
    clean = await service.drain()
    await server.close()
    await service.close()
    if clean:
        print("drained cleanly", file=sys.stderr)
    else:
        print(
            "drain grace expired; unfinished jobs remain journaled and "
            "resume on restart", file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Aging-aware CGRRA floorplanning flow."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by the solver-running subcommands.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="record spans/events/metrics as JSONL to this file",
    )
    obs_flags.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry snapshot after the run",
    )
    obs_flags.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
        help="repro.* stderr logger level (default: warning)",
    )
    obs_flags.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole command; on expiry the flow "
        "degrades gracefully instead of running on (default: unlimited)",
    )
    obs_flags.add_argument(
        "--solver-progress", action="store_true",
        help="live stderr progress line (incumbent/bound/gap/nodes) during "
        "long MILP solves",
    )
    obs_flags.add_argument(
        "--profile", metavar="FILE.pstats", default=None,
        help="cProfile the command, write pstats to FILE and print the "
        "top cumulative-time hotspots",
    )
    obs_flags.add_argument(
        "--no-explain", action="store_true",
        help="disable solve diagnostics (binding attribution, IIS "
        "extraction, explain events; on by default — docs/observability.md)",
    )

    # Certification opt-out, shared by the Algorithm-1-running commands.
    cert_flags = argparse.ArgumentParser(add_help=False)
    cert_flags.add_argument(
        "--no-certify", action="store_true",
        help="skip the independent certification of accepted MILP "
        "solutions (on by default; see docs/robustness.md)",
    )

    # Solver-portfolio racing, shared by the Algorithm-1-running commands.
    portfolio_flags = argparse.ArgumentParser(add_help=False)
    portfolio_flags.add_argument(
        "--portfolio", action="store_true",
        help="race solver lanes on every MILP solve and accept the first "
        "independently certified answer; crashed/hung/lying lanes are "
        "struck and demoted by circuit breakers (docs/robustness.md)",
    )
    portfolio_flags.add_argument(
        "--lanes", default=None, metavar="LANE[,LANE...]",
        help="lane order when racing (default: highs,branch-bound,prober); "
        "the first breaker-healthy lane leads",
    )
    portfolio_flags.add_argument(
        "--hedge-delay", type=float, default=None, metavar="SECONDS",
        help="backup lanes start this long after the leader (default: 1.5s; "
        "released early when every started lane has failed)",
    )

    p = sub.add_parser("compile", help="mini-C -> mapped design JSON")
    p.add_argument("source")
    p.add_argument("-o", "--output", default="design.json")
    p.add_argument("--capacity", type=int, default=16)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("place", help="aging-unaware baseline placement")
    p.add_argument("design")
    p.add_argument("--fabric", default="4x4")
    p.add_argument("-o", "--output", default="floorplan.json")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser(
        "remap", help="aging-aware re-mapping (Algorithm 1)",
        parents=[obs_flags, cert_flags, portfolio_flags],
    )
    p.add_argument("design")
    p.add_argument("floorplan")
    p.add_argument("-o", "--output", default="remapped.json")
    p.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.set_defaults(func=cmd_remap)

    p = sub.add_parser("analyze", help="CPD/stress/MTTF of a floorplan")
    p.add_argument("design")
    p.add_argument("floorplan")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "flow", help="full Phase 1 + Phase 2 on a kernel",
        parents=[obs_flags, cert_flags, portfolio_flags],
    )
    p.add_argument("source")
    p.add_argument("--fabric", default="4x4")
    p.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser(
        "bench", help="Table I benchmarks: one / run / compare"
    )
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser(
        "one", help="run one Table I benchmark",
        parents=[obs_flags, cert_flags],
    )
    b.add_argument("name")
    b.add_argument("--scaled", type=int, default=None)
    b.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    b.add_argument("--time-limit", type=float, default=30.0)
    b.set_defaults(func=cmd_bench)

    b = bsub.add_parser(
        "run", help="run the perf suite -> BENCH_<timestamp>.json",
        parents=[obs_flags],
    )
    b.add_argument(
        "-o", "--output", default=None,
        help="bench record path (default: BENCH_<timestamp>.json)",
    )
    b.add_argument(
        "--benchmarks", default=None, metavar="B1,B4,...",
        help="comma-separated subset (default: the smoke suite)",
    )
    b.add_argument("--scaled", type=int, default=8, metavar="DIM",
                   help="fabric cap (default: 8 = smoke scale)")
    b.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    b.add_argument("--time-limit", type=float, default=15.0)
    b.add_argument("--seed", type=int, default=0)
    b.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run suite entries on an N-process pool (default: 1 = serial)",
    )
    b.set_defaults(func=cmd_bench_run)

    b = bsub.add_parser(
        "compare", help="diff two bench records; exit 3 on regression"
    )
    b.add_argument("baseline")
    b.add_argument("candidate")
    b.add_argument(
        "--threshold-wall", type=float, default=0.25, metavar="REL",
        help="allowed relative wall-time increase (default: 0.25)",
    )
    b.add_argument(
        "--threshold-mem", type=float, default=0.30, metavar="REL",
        help="allowed relative peak-memory increase (default: 0.30)",
    )
    b.add_argument(
        "--threshold-nodes", type=float, default=0.50, metavar="REL",
        help="allowed relative solver-node increase (default: 0.50)",
    )
    b.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soft mode)",
    )
    b.add_argument(
        "--threshold-stage", type=float, default=0.60, metavar="REL",
        help="allowed relative evaluation-stage wall increase "
        "(default: 0.60)",
    )
    b.add_argument(
        "--gate-stages", action="store_true",
        help="fail (exit 3) on evaluation-stage regressions (sta, stress, "
        "thermal, ...) even under --warn-only — the vectorized-kernels "
        "perf gate",
    )
    b.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser(
        "verify",
        help="independently certify a saved flow record "
        "(repro flow ... -o record.json)",
    )
    p.add_argument("record", help="flow_result JSON artifact to certify")
    p.add_argument(
        "--certify-backend", default=None,
        choices=["highs", "branch-bound"], metavar="BACKEND",
        help="additionally re-solve sampled contexts on this backend and "
        "compare objectives against HiGHS (highs | branch-bound)",
    )
    p.add_argument(
        "--sample", type=int, default=2, metavar="N",
        help="contexts to re-solve in differential mode (default: 2)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--time-limit", type=float, default=30.0,
        help="per-context solver time limit in differential mode",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("trace", help="inspect JSONL observability traces")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser(
        "summarize", help="aggregate a trace into a per-stage table"
    )
    ts.add_argument("file")
    ts.add_argument(
        "--json", action="store_true",
        help="emit the full summary as one JSON document instead of tables",
    )
    ts.set_defaults(func=cmd_trace_summarize)

    p = sub.add_parser(
        "explain",
        help="explain a saved run: self-contained HTML/markdown report, "
        "or a forced-infeasible IIS probe",
    )
    p.add_argument(
        "artifacts", nargs="+",
        help="flow record (repro flow -o record.json) and/or JSONL trace; "
        "with --probe-infeasible: a mapped design JSON",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="write the rendered report here (.html -> HTML, else markdown); "
        "default: print markdown to stdout",
    )
    p.add_argument(
        "--format", choices=["html", "markdown", "md"], default=None,
        help="report format (default: inferred from -o, else markdown)",
    )
    p.add_argument(
        "--probe-infeasible", action="store_true",
        help="build the provably-infeasible pigeonhole stress model for "
        "the given design, extract + verify an IIS, and print it",
    )
    p.add_argument(
        "--fabric", default="4x4",
        help="fabric for --probe-infeasible (default: 4x4)",
    )
    p.add_argument(
        "--probe-factor", type=float, default=0.9, metavar="F",
        help="ST_target = F * mean per-PE load, F in (0,1) (default: 0.9)",
    )
    p.add_argument(
        "--time-limit", type=float, default=30.0,
        help="IIS extraction/verification budget in seconds (default: 30)",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "serve",
        help="run the floorplanning service: HTTP front end with "
        "admission control, persistent artifact cache and graceful drain",
        parents=[obs_flags],
    )
    p.add_argument(
        "--state-dir", default="service-state",
        help="durable state root: job journal, artifact cache, "
        "endpoint.json (default: service-state)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral; the bound port is "
        "published to <state-dir>/endpoint.json)",
    )
    p.add_argument(
        "--concurrency", type=int, default=2,
        help="parallel job slots, one single-worker pool each (default: 2)",
    )
    p.add_argument(
        "--max-queue", type=int, default=64,
        help="admitted-but-unfinished cap before shedding (default: 64)",
    )
    p.add_argument(
        "--tenant-queue", type=int, default=32,
        help="per-tenant backlog cap (default: 32)",
    )
    p.add_argument(
        "--tenant-concurrency", type=int, default=2,
        help="per-tenant running-job quota (default: 2)",
    )
    p.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts after a crashed/failed solve (default: 2)",
    )
    p.add_argument(
        "--attempt-timeout", type=float, default=300.0, metavar="SECONDS",
        help="kill a worker still running after this long (default: 300)",
    )
    p.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="SIGTERM drain budget for in-flight jobs (default: 10)",
    )
    p.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="base Retry-After hint for shed requests (default: 1)",
    )
    p.add_argument(
        "--no-certify-cache", action="store_true",
        help="serve cached artifacts without re-certification "
        "(integrity checksums still apply)",
    )
    p.set_defaults(func=cmd_serve)
    return parser


def _normalize_argv(argv: list[str] | None) -> list[str]:
    """Back-compat shim: ``bench B13 ...`` means ``bench one B13 ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench" and len(argv) > 1:
        nxt = argv[1]
        if nxt not in ("run", "compare", "one") and not nxt.startswith("-"):
            argv.insert(1, "one")
    return argv


def _run_profiled(args, path: str) -> int:
    """Run the subcommand under cProfile; dump pstats + print hotspots."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    try:
        code = profiler.runcall(args.func, args)
    finally:
        profiler.create_stats()
        profiler.dump_stats(path)
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"\nprofile -> {path}", file=sys.stderr)
        print(buffer.getvalue(), file=sys.stderr, end="")
    return code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(_normalize_argv(argv))
    configure_logging(getattr(args, "log_level", "warning"))
    if getattr(args, "solver_progress", False):
        set_progress(True)
    if getattr(args, "no_explain", False):
        set_explain(False)
    sink = None
    trace_path = getattr(args, "trace", None)
    if trace_path:
        try:
            sink = JsonlSink(trace_path)
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 1
        add_sink(sink)
    try:
        profile_path = getattr(args, "profile", None)
        if profile_path:
            code = _run_profiled(args, profile_path)
        else:
            code = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    except BrokenPipeError:
        # Downstream pager/head closed stdout; exit quietly like cat does.
        # Point stdout at devnull so the interpreter's final flush is silent.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    finally:
        if getattr(args, "solver_progress", False):
            set_progress(None)
        if getattr(args, "no_explain", False):
            set_explain(None)
        if sink is not None:
            remove_sink(sink)
            sink.write_metrics(registry().snapshot())
            sink.close()
            print(f"trace -> {trace_path}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print()
        print(format_table(["metric", "kind", "value"], _metrics_rows()))
    return code


if __name__ == "__main__":
    sys.exit(main())
