"""Reporting: tables, ASCII figures, paper reference values, experiment CLI."""

from repro.report.figures import ascii_curve, bar_chart, series_csv, stress_grid
from repro.report.paper import (
    BenchmarkMeasurement,
    ShapeCheck,
    TABLE_HEADERS,
    class_averages,
    paper_class_averages,
    paper_reference_rows,
    shape_checks,
)
from repro.report.tables import format_csv, format_mapping, format_table

__all__ = [
    "BenchmarkMeasurement",
    "ShapeCheck",
    "TABLE_HEADERS",
    "ascii_curve",
    "bar_chart",
    "class_averages",
    "format_csv",
    "format_mapping",
    "format_table",
    "paper_class_averages",
    "paper_reference_rows",
    "series_csv",
    "shape_checks",
    "stress_grid",
]
