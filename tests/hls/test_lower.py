"""Lowering tests: the DFG must preserve mini-C semantics.

The strongest checks compare ``DataflowGraph.evaluate`` against a direct
Python interpretation of the same program for concrete and
hypothesis-generated inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import OpKind
from repro.errors import HLSError
from repro.hls import compile_source


def run(source, **inputs):
    return compile_source(source, "t").evaluate(inputs)


class TestStraightLine:
    def test_expression(self):
        assert run("in int a, b; out int y = a * 3 - b;", a=5, b=2) == {"y": 13}

    def test_constant_folding_removes_nodes(self):
        dfg = compile_source("out int y = 2 * 3 + 4;", "t")
        assert dfg.num_compute == 0
        assert dfg.evaluate({}) == {"y": 10}

    def test_mixed_const_and_var(self):
        assert run("in int a; out int y = (2 + 3) * a;", a=4) == {"y": 20}

    def test_multiple_outputs(self):
        result = run("in int a; out int y1 = a + 1; out int y2 = a - 1;", a=10)
        assert result == {"y1": 11, "y2": 9}

    def test_use_before_assignment_rejected(self):
        with pytest.raises(HLSError):
            compile_source("int x; out int y = x + 1;", "t")

    def test_width_promotion(self):
        dfg = compile_source("in char a; in short b; out int y = a + b;", "t")
        add_nodes = [n for n in dfg if n.kind is OpKind.ADD]
        assert add_nodes[0].width == 16  # max of operand widths


class TestIfConversion:
    SRC = """
    in int a;
    int x = 0;
    if (a > 10) x = a - 10; else x = a + 10;
    out int y = x;
    """

    def test_both_branches(self):
        assert run(self.SRC, a=15) == {"y": 5}
        assert run(self.SRC, a=5) == {"y": 15}

    def test_select_node_created(self):
        dfg = compile_source(self.SRC, "t")
        assert any(n.kind is OpKind.SELECT for n in dfg)

    def test_static_branch_elided(self):
        dfg = compile_source(
            "in int a; int x = 0; if (1 < 2) x = a; else x = a * 1000;"
            "out int y = x;",
            "t",
        )
        assert not any(n.kind is OpKind.SELECT for n in dfg)

    def test_nested_ifs(self):
        src = """
        in int a;
        int x = 0;
        if (a > 0) { if (a > 100) x = 2; else x = 1; } else x = -1;
        out int y = x;
        """
        assert run(src, a=500) == {"y": 2}
        assert run(src, a=50) == {"y": 1}
        assert run(src, a=-3) == {"y": -1}

    def test_one_sided_if_with_prior_value(self):
        src = "in int a; int x = 7; if (a) x = a; out int y = x;"
        assert run(src, a=0) == {"y": 7}
        assert run(src, a=3) == {"y": 3}

    def test_one_sided_if_without_prior_value_rejected(self):
        with pytest.raises(HLSError):
            compile_source(
                "in int a; int x; if (a) x = 1; out int y = x;", "t"
            )

    def test_ternary_expression(self):
        src = "in int a; out int y = a > 0 ? a : -a;"
        assert run(src, a=-5) == {"y": 5}
        assert run(src, a=5) == {"y": 5}


class TestLoops:
    def test_full_unroll_sum(self):
        src = """
        int i; int s = 0;
        for (i = 0; i < 5; i++) s += i;
        out int y = s;
        """
        assert run(src) == {"y": 10}

    def test_loop_over_array(self):
        src = """
        in int a;
        int i; int arr[4]; int s = 0;
        for (i = 0; i < 4; i++) arr[i] = a + i;
        for (i = 3; i >= 0; i--) s = s * 2 + arr[i];
        out int y = s;
        """
        a = 3
        arr = [a + i for i in range(4)]
        expected = 0
        for i in reversed(range(4)):
            expected = expected * 2 + arr[i]
        assert run(src, a=a) == {"y": expected}

    def test_zero_trip_loop(self):
        src = "int i; int s = 5; for (i = 0; i < 0; i++) s = 0; out int y = s;"
        assert run(src) == {"y": 5}

    def test_step_by_two(self):
        src = "int i; int s = 0; for (i = 0; i < 10; i += 2) s += 1; out int y = s;"
        assert run(src) == {"y": 5}

    def test_non_constant_bound_rejected(self):
        with pytest.raises(HLSError):
            compile_source(
                "in int n; int i; int s = 0;"
                "for (i = 0; i < n; i++) s += 1; out int y = s;",
                "t",
            )

    def test_runaway_loop_rejected(self):
        with pytest.raises(HLSError):
            compile_source(
                "int i; int s = 0;"
                "for (i = 0; i < 100000000; i++) s += 1; out int y = s;",
                "t",
            )

    def test_loop_variable_value_after_loop(self):
        src = "int i; for (i = 0; i < 4; i++) ; out int y = i;"
        assert run(src) == {"y": 4}


class TestArrays:
    def test_constant_index_store_load(self):
        src = "int a[3]; a[0] = 1; a[1] = 2; a[2] = a[0] + a[1]; out int y = a[2];"
        assert run(src) == {"y": 3}

    def test_computed_constant_index(self):
        src = "int i; int a[4]; for (i = 0; i < 4; i++) a[3 - i] = i; out int y = a[0];"
        assert run(src) == {"y": 3}

    def test_dynamic_index_rejected(self):
        with pytest.raises(HLSError):
            compile_source(
                "in int n; int a[4]; a[0] = 1; out int y = a[n];", "t"
            )

    def test_array_input(self):
        src = "in int v[2]; out int y = v[0] * v[1];"
        dfg = compile_source(src, "t")
        assert dfg.evaluate({"v[0]": 3, "v[1]": 4}) == {"y": 12}


small_int = st.integers(-1000, 1000)


class TestSemanticEquivalence:
    """Lowered DFGs match direct Python evaluation on random inputs."""

    KERNEL = """
    in int a, b;
    int i;
    int acc = 0;
    int w[4];
    for (i = 0; i < 4; i++) w[i] = (a >> i) ^ (b << i);
    for (i = 0; i < 4; i++) acc += w[i] * (i + 1);
    out int y;
    if (acc < 0) y = -acc; else y = acc;
    """

    @staticmethod
    def reference(a, b):
        def t(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v

        w = [t(t(a >> i) ^ t(t(b << i))) for i in range(4)]
        acc = 0
        for i in range(4):
            acc = t(acc + t(w[i] * (i + 1)))
        return t(-acc) if acc < 0 else acc

    @settings(max_examples=60, deadline=None)
    @given(a=small_int, b=small_int)
    def test_kernel_matches_reference(self, a, b):
        assert run(self.KERNEL, a=a, b=b) == {"y": self.reference(a, b)}

    @settings(max_examples=40, deadline=None)
    @given(a=small_int, b=small_int, c=small_int)
    def test_random_expression(self, a, b, c):
        src = "in int a, b, c; out int y = (a + b) * c - (a ^ b) + (c >> 2);"
        def t(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v
        expected = t(t(t(t((a + b)) * c) - (a ^ b)) + (c >> 2))
        assert run(src, a=a, b=b, c=c) == {"y": expected}
