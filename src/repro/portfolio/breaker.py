"""Per-lane circuit breakers for the solver portfolio.

A lane that keeps crashing, hanging past its budget, or returning
uncertifiable answers should stop being trusted with the leader position
— but must keep getting *probed*, because solver pathologies are often
instance-specific and the lane may recover on the next model.  The
breaker is the classic three-state machine, specialised for racing:

``closed``
    Healthy.  The lane runs in its configured position (leader if it is
    first).
``hedged``
    Suspect (``HEDGE_AFTER`` consecutive failures).  The lane is demoted
    to the hedged late-start position even when configured first, so a
    healthy lane takes the leader slot; a success closes the breaker.
``open``
    Quarantined (``OPEN_AFTER`` consecutive failures).  The lane sits out
    solves entirely, except for exponentially backed-off *recovery
    probes*: it skips 1, then 2, 4, ... up to ``MAX_PROBE_SKIP`` solves,
    and on each probe runs once in the hedged position.  A probe success
    closes the breaker; a probe failure doubles the back-off.

Everything is deterministic — counts of consecutive failures and solves
skipped, never wall-clock or randomness — so fault-injection tests can
assert exact transitions.  Losing a race is *not* a failure: only crash /
rejected / timeout / overtaken (see the executor) feed the breaker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import counter, event, get_logger

_log = get_logger("portfolio.breaker")

#: Consecutive failures that demote a lane to the hedged position.
HEDGE_AFTER = 2
#: Consecutive failures that quarantine a lane (open the breaker).
OPEN_AFTER = 4
#: Upper bound of the exponential probe back-off (solves skipped).
MAX_PROBE_SKIP = 16

#: Admission verdicts handed to the executor per solve.
ADMIT_RUN = "run"
ADMIT_HEDGED = "hedged"
ADMIT_SKIP = "skip"

#: Failure kinds a lane can be charged with (the executor classifies).
FAILURE_KINDS = ("crash", "rejected", "timeout", "overtaken", "hang")


@dataclass
class CircuitBreaker:
    """Deterministic health tracker for one portfolio lane."""

    lane: str
    state: str = "closed"  # "closed" | "hedged" | "open"
    consecutive_failures: int = 0
    #: Lifetime tallies, persisted into ``Algorithm1Stats.portfolio``.
    successes: int = 0
    failures: int = 0
    failure_kinds: dict[str, int] = field(default_factory=dict)
    #: Solves still to skip before the next recovery probe (open state).
    probe_skip_left: int = 0
    #: Back-off that the *next* probe failure will impose.
    next_probe_skip: int = 1
    probes: int = 0
    #: Bounded transition log: ``(solve_index, from_state, to_state, why)``.
    transitions: list[tuple[int, str, str, str]] = field(default_factory=list)
    _solve_index: int = 0

    # -- admission ------------------------------------------------------------
    def admit(self) -> str:
        """Decide this lane's participation in the next solve.

        Called exactly once per portfolio solve; advances the open-state
        probe countdown as a side effect.
        """
        self._solve_index += 1
        if self.state == "closed":
            return ADMIT_RUN
        if self.state == "hedged":
            return ADMIT_HEDGED
        # Open: sit out until the probe countdown elapses.
        if self.probe_skip_left > 0:
            self.probe_skip_left -= 1
            return ADMIT_SKIP
        self.probes += 1
        counter(f"portfolio.breaker.probes.{self.lane}").inc()
        return ADMIT_HEDGED

    # -- outcomes -------------------------------------------------------------
    def record_success(self) -> None:
        """The lane produced a certified (or proven-infeasible) answer."""
        self.successes += 1
        if self.state != "closed":
            self._transition("closed", "success")
        self.consecutive_failures = 0
        self.next_probe_skip = 1
        self.probe_skip_left = 0

    def record_failure(self, kind: str) -> None:
        """Charge the lane with a failure of ``kind`` (see FAILURE_KINDS)."""
        self.failures += 1
        self.failure_kinds[kind] = self.failure_kinds.get(kind, 0) + 1
        self.consecutive_failures += 1
        if self.state == "open":
            # A failed recovery probe: double the back-off and keep waiting.
            self.probe_skip_left = self.next_probe_skip
            self.next_probe_skip = min(self.next_probe_skip * 2, MAX_PROBE_SKIP)
            self._transition("open", f"probe_failed:{kind}")
        elif self.consecutive_failures >= OPEN_AFTER:
            self.probe_skip_left = self.next_probe_skip
            self.next_probe_skip = min(self.next_probe_skip * 2, MAX_PROBE_SKIP)
            self._transition("open", kind)
        elif self.consecutive_failures >= HEDGE_AFTER:
            self._transition("hedged", kind)

    def _transition(self, to_state: str, why: str) -> None:
        if to_state == self.state and not why.startswith("probe_failed"):
            return
        self.transitions.append((self._solve_index, self.state, to_state, why))
        if len(self.transitions) > 64:
            del self.transitions[0]
        if to_state != self.state:
            counter(f"portfolio.breaker.{to_state}").inc()
            event(
                "portfolio.breaker",
                lane=self.lane,
                from_state=self.state,
                to_state=to_state,
                why=why,
                consecutive_failures=self.consecutive_failures,
            )
            _log.warning(
                "lane %r breaker: %s -> %s (%s, %d consecutive failures)",
                self.lane, self.state, to_state, why,
                self.consecutive_failures,
            )
        self.state = to_state

    # -- reporting ------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot for ``Algorithm1Stats.portfolio``."""
        return {
            "lane": self.lane,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "successes": self.successes,
            "failures": self.failures,
            "failure_kinds": dict(self.failure_kinds),
            "probes": self.probes,
            "next_probe_skip": self.next_probe_skip,
            "transitions": [
                {"solve": idx, "from": src, "to": dst, "why": why}
                for idx, src, dst, why in self.transitions
            ],
        }


class BreakerBoard:
    """The portfolio's set of per-lane breakers."""

    def __init__(self, lanes: tuple[str, ...]) -> None:
        self.breakers = {lane: CircuitBreaker(lane) for lane in lanes}

    def __getitem__(self, lane: str) -> CircuitBreaker:
        return self.breakers[lane]

    def snapshot(self) -> dict:
        return {lane: brk.to_dict() for lane, brk in self.breakers.items()}
