"""Semantic analysis for mini-C programs.

Checks performed before lowering:

* every variable is declared before use and declared at most once;
* ``in`` variables are never assigned; ``out`` variables are assigned
  (either at declaration or later);
* array sizes are positive; array references target declared arrays and
  scalar references target declared scalars;
* ``for`` loops use a declared scalar loop variable and step it;
* constant array indices are within bounds.

Loop-bound constancy is verified during lowering (where the constant
folder lives); everything checkable without evaluation is checked here so
errors point at source lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeCheckError
from repro.hls.ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Conditional,
    Decl,
    Expr,
    For,
    If,
    NumberLit,
    Program,
    Stmt,
    TYPE_WIDTHS,
    UnaryOp,
    VarRef,
)


@dataclass
class Symbol:
    """A declared variable."""

    name: str
    ctype: str
    qualifier: str  # "", "in", "out"
    array_size: int | None
    line: int
    assigned: bool = False

    @property
    def width(self) -> int:
        return TYPE_WIDTHS[self.ctype]

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


class SymbolTable:
    """Flat symbol table (mini-C has a single scope)."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def declare(self, decl: Decl) -> Symbol:
        if decl.name in self._symbols:
            raise TypeCheckError(
                f"line {decl.line}: variable {decl.name!r} redeclared"
            )
        if decl.ctype not in TYPE_WIDTHS:
            raise TypeCheckError(f"line {decl.line}: unknown type {decl.ctype!r}")
        if decl.array_size is not None and decl.array_size <= 0:
            raise TypeCheckError(
                f"line {decl.line}: array {decl.name!r} has non-positive size"
            )
        if decl.qualifier == "in" and decl.init is not None:
            raise TypeCheckError(
                f"line {decl.line}: input {decl.name!r} cannot have an initializer"
            )
        symbol = Symbol(
            name=decl.name,
            ctype=decl.ctype,
            qualifier=decl.qualifier,
            array_size=decl.array_size,
            line=decl.line,
            assigned=decl.init is not None or decl.qualifier == "in",
        )
        self._symbols[decl.name] = symbol
        return symbol

    def lookup(self, name: str, line: int) -> Symbol:
        try:
            return self._symbols[name]
        except KeyError as exc:
            raise TypeCheckError(f"line {line}: undeclared variable {name!r}") from exc

    def symbols(self) -> list[Symbol]:
        return list(self._symbols.values())


def check_program(program: Program) -> SymbolTable:
    """Run all semantic checks; returns the populated symbol table."""
    table = SymbolTable()
    for stmt in program.statements:
        _check_stmt(stmt, table)
    unassigned_outputs = [
        s.name for s in table.symbols() if s.qualifier == "out" and not s.assigned
    ]
    if unassigned_outputs:
        raise TypeCheckError(
            f"output variables never assigned: {', '.join(unassigned_outputs)}"
        )
    if not any(s.qualifier == "out" for s in table.symbols()):
        raise TypeCheckError("program has no 'out' variables — nothing to synthesize")
    return table


def _check_stmt(stmt: Stmt, table: SymbolTable) -> None:
    if isinstance(stmt, Decl):
        symbol = table.declare(stmt)
        if stmt.init is not None:
            _check_expr(stmt.init, table)
            symbol.assigned = True
    elif isinstance(stmt, Assign):
        _check_assign(stmt, table)
    elif isinstance(stmt, If):
        _check_expr(stmt.cond, table)
        for sub in stmt.then_body:
            _check_stmt(sub, table)
        for sub in stmt.else_body:
            _check_stmt(sub, table)
    elif isinstance(stmt, For):
        loop_symbol = table.lookup(stmt.var, stmt.line)
        if loop_symbol.is_array:
            raise TypeCheckError(
                f"line {stmt.line}: loop variable {stmt.var!r} must be a scalar"
            )
        _check_expr(stmt.init, table)
        loop_symbol.assigned = True
        _check_expr(stmt.cond, table)
        _check_assign(stmt.step, table)
        for sub in stmt.body:
            _check_stmt(sub, table)
    else:  # pragma: no cover - exhaustive over Stmt
        raise TypeCheckError(f"unknown statement type {type(stmt).__name__}")


def _check_assign(stmt: Assign, table: SymbolTable) -> None:
    target = stmt.target
    symbol = table.lookup(target.name, stmt.line)
    if symbol.qualifier == "in":
        raise TypeCheckError(
            f"line {stmt.line}: cannot assign to input {target.name!r}"
        )
    if isinstance(target, ArrayRef):
        if not symbol.is_array:
            raise TypeCheckError(
                f"line {stmt.line}: {target.name!r} is not an array"
            )
        _check_expr(target.index, table)
        _check_constant_index(target, symbol)
    else:
        if symbol.is_array:
            raise TypeCheckError(
                f"line {stmt.line}: array {target.name!r} needs an index"
            )
    if stmt.op != "=":
        # Compound assignment reads the target first.
        if not symbol.assigned:
            raise TypeCheckError(
                f"line {stmt.line}: {target.name!r} used before assignment"
            )
    _check_expr(stmt.value, table)
    symbol.assigned = True


def _check_expr(expr: Expr, table: SymbolTable) -> None:
    if isinstance(expr, NumberLit):
        return
    if isinstance(expr, VarRef):
        symbol = table.lookup(expr.name, expr.line)
        if symbol.is_array:
            raise TypeCheckError(
                f"line {expr.line}: array {expr.name!r} used without an index"
            )
        return
    if isinstance(expr, ArrayRef):
        symbol = table.lookup(expr.name, expr.line)
        if not symbol.is_array:
            raise TypeCheckError(
                f"line {expr.line}: {expr.name!r} is not an array"
            )
        _check_expr(expr.index, table)
        _check_constant_index(expr, symbol)
        return
    if isinstance(expr, UnaryOp):
        _check_expr(expr.operand, table)
        return
    if isinstance(expr, BinaryOp):
        _check_expr(expr.left, table)
        _check_expr(expr.right, table)
        return
    if isinstance(expr, Conditional):
        _check_expr(expr.cond, table)
        _check_expr(expr.if_true, table)
        _check_expr(expr.if_false, table)
        return
    raise TypeCheckError(f"unknown expression type {type(expr).__name__}")


def _check_constant_index(ref: ArrayRef, symbol: Symbol) -> None:
    """Bounds-check indices that are literal constants."""
    if isinstance(ref.index, NumberLit):
        idx = ref.index.value
        if not 0 <= idx < (symbol.array_size or 0):
            raise TypeCheckError(
                f"line {ref.line}: index {idx} out of bounds for "
                f"{ref.name}[{symbol.array_size}]"
            )
