"""Stdlib-``logging`` wiring for the ``repro.*`` namespace.

Library modules obtain loggers via :func:`get_logger` and never attach
handlers or call ``print`` — output policy belongs to the application.
The CLI (and tests, when useful) call :func:`configure_logging` once to
attach a stderr handler to the ``repro`` root logger, so ``--log-level
debug`` surfaces solver iteration detail without touching stdout, which
stays reserved for command output.
"""

from __future__ import annotations

import logging
import sys

#: Root of the library's logger namespace.
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("core.flow")`` -> ``repro.core.flow``; names already
    starting with ``repro`` are used verbatim.
    """
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def parse_level(level: str | int) -> int:
    """``"debug"``/``"INFO"``/numeric -> stdlib level number."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        ) from None


def configure_logging(
    level: str | int = "warning", stream=None
) -> logging.Logger:
    """Attach (once) a stderr handler to the ``repro`` root logger.

    Re-invocation updates the level and stream of the existing handler
    instead of stacking duplicates, so tests and long-lived sessions can
    reconfigure freely.
    """
    root = logging.getLogger(ROOT)
    root.setLevel(parse_level(level))
    stream = stream if stream is not None else sys.stderr
    for handler in root.handlers:
        if getattr(handler, "_repro_obs", False):
            try:
                handler.setStream(stream)  # type: ignore[attr-defined]
            except ValueError:
                # setStream flushes the outgoing stream first; if that
                # stream is already closed (pytest capture buffers,
                # redirected files) just swap without flushing.
                handler.stream = stream  # type: ignore[attr-defined]
            return root
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    # Command output stays on stdout; diagnostics must not also bubble to
    # the stdlib root logger's lastResort handler.
    root.propagate = False
    return root
