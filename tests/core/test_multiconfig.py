"""Multi-configuration rotation-set extension tests."""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import (
    Algorithm1Config,
    RemapConfig,
    build_rotation_set,
    combined_stress_map,
)
from repro.errors import FlowError
from repro.timing import analyze


def fast_config():
    return Algorithm1Config(remap=RemapConfig(time_limit_s=30))


@pytest.fixture(scope="module")
def rotation_set(synth_design, synth_floorplan, fabric4):
    return build_rotation_set(
        synth_design, fabric4, synth_floorplan, k=2, config=fast_config()
    )


class TestRotationSet:
    def test_size(self, rotation_set):
        assert rotation_set.size == 2
        assert len(rotation_set.per_config_max_ns) == 2

    def test_every_configuration_cpd_safe(
        self, rotation_set, synth_design, synth_floorplan
    ):
        original_cpd = analyze(synth_design, synth_floorplan).cpd_ns
        for floorplan in rotation_set.floorplans:
            assert analyze(synth_design, floorplan).cpd_ns <= original_cpd + 1e-6

    def test_every_configuration_legal(self, rotation_set, synth_floorplan):
        from repro.arch import check_same_schedule

        for floorplan in rotation_set.floorplans:
            floorplan.validate()
            check_same_schedule(synth_floorplan, floorplan)

    def test_combined_stress_is_mean(self, rotation_set, synth_design):
        recomputed = combined_stress_map(synth_design, rotation_set.floorplans)
        assert recomputed.total_ns == pytest.approx(
            rotation_set.combined_stress.total_ns
        )

    def test_combined_total_matches_single(self, rotation_set, synth_design):
        """Averaging conserves total stress per schedule iteration."""
        assert rotation_set.combined_stress.total_ns == pytest.approx(
            synth_design.total_stress_ns()
        )

    def test_set_improves_on_single_configuration(
        self, rotation_set, synth_design, synth_floorplan, fabric4
    ):
        """The time-averaged worst PE is bounded by the set budget and can
        never exceed the worst single configuration (the mean of per-PE
        values is at most their per-PE maximum)."""
        worst_single = max(rotation_set.per_config_max_ns)
        combined = rotation_set.combined_stress.max_accumulated_ns
        assert combined <= worst_single + 1e-9
        # Joint budget: cumulative stress <= final set target, so the
        # average is bounded by target / K.
        final_target = max(
            (c.get("set_target_ns", 0.0) for c in rotation_set.stats["configs"]),
            default=0.0,
        )
        if final_target:
            assert combined <= final_target / rotation_set.size + 1e-9

    def test_mttf_better_than_original(
        self, rotation_set, synth_design, synth_floorplan, fabric4
    ):
        from repro.aging import compute_mttf
        from repro.thermal import ThermalSimulator

        original_stress = compute_stress_map(synth_design, synth_floorplan)
        simulator = ThermalSimulator(fabric4)
        thermal = simulator.simulate(original_stress.duty_per_context())
        original = compute_mttf(original_stress, thermal.accumulated_k)
        assert rotation_set.mttf.mttf_s >= original.mttf_s


class TestValidation:
    def test_k_must_be_positive(self, synth_design, synth_floorplan, fabric4):
        with pytest.raises(FlowError):
            build_rotation_set(
                synth_design, fabric4, synth_floorplan, k=0,
                config=fast_config(),
            )

    def test_empty_combined_rejected(self, synth_design):
        with pytest.raises(FlowError):
            combined_stress_map(synth_design, [])

    def test_k1_reduces_to_single_flow(
        self, synth_design, synth_floorplan, fabric4
    ):
        result = build_rotation_set(
            synth_design, fabric4, synth_floorplan, k=1, config=fast_config()
        )
        assert result.size == 1
        assert result.combined_stress.max_accumulated_ns == pytest.approx(
            result.per_config_max_ns[0]
        )
