"""Critical-path rotation tests: the 8-orientation group and the
assignment rule of Section V-B.1."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import Fabric, Floorplan
from repro.core import (
    NUM_ORIENTATIONS,
    apply_orientation,
    assign_orientations,
    freeze_plan,
    rotate_plan,
)
from repro.errors import ArchitectureError, MappingError


@pytest.fixture
def fabric():
    return Fabric(4, 4)


coords4 = st.tuples(st.integers(0, 3), st.integers(0, 3))


class TestOrientationGroup:
    def test_identity(self, fabric):
        assert apply_orientation(fabric, 0, (1, 2)) == (1, 2)

    def test_quarter_turn(self, fabric):
        # (r, c) -> (c, S-1-r)
        assert apply_orientation(fabric, 1, (0, 0)) == (0, 3)
        assert apply_orientation(fabric, 1, (1, 2)) == (2, 2)

    def test_half_turn(self, fabric):
        assert apply_orientation(fabric, 2, (0, 0)) == (3, 3)

    def test_mirror(self, fabric):
        assert apply_orientation(fabric, 4, (1, 0)) == (1, 3)

    @given(pos=coords4)
    def test_all_orientations_stay_on_grid(self, pos):
        fabric = Fabric(4, 4)
        for orientation in range(NUM_ORIENTATIONS):
            row, col = apply_orientation(fabric, orientation, pos)
            assert (row, col) in fabric

    @given(pos=coords4)
    def test_orientations_are_distinct_maps(self, pos):
        """The 8 orientations form the dihedral group D4: as *maps* they
        are pairwise distinct (verified on the full grid, not one point)."""
        fabric = Fabric(4, 4)
        images = []
        for orientation in range(NUM_ORIENTATIONS):
            image = tuple(
                apply_orientation(fabric, orientation, (r, c))
                for r in range(4)
                for c in range(4)
            )
            images.append(image)
        assert len(set(images)) == NUM_ORIENTATIONS

    @given(a=coords4, b=coords4, orientation=st.integers(0, 7))
    def test_manhattan_isometry(self, a, b, orientation):
        """Rotations/mirrors of the square preserve L1 distances — the
        property that makes rotated critical paths keep their delay."""
        fabric = Fabric(4, 4)
        ra = apply_orientation(fabric, orientation, a)
        rb = apply_orientation(fabric, orientation, b)
        original = abs(a[0] - b[0]) + abs(a[1] - b[1])
        rotated = abs(ra[0] - rb[0]) + abs(ra[1] - rb[1])
        assert rotated == original

    @given(orientation=st.integers(0, 7))
    def test_bijectivity(self, orientation):
        fabric = Fabric(4, 4)
        images = {
            apply_orientation(fabric, orientation, (r, c))
            for r in range(4)
            for c in range(4)
        }
        assert len(images) == 16

    def test_rectangular_fabric_rejected(self):
        with pytest.raises(ArchitectureError):
            apply_orientation(Fabric(2, 4), 1, (0, 0))

    def test_bad_orientation_rejected(self, fabric):
        with pytest.raises(ArchitectureError):
            apply_orientation(fabric, 8, (0, 0))

    def test_off_grid_position_rejected(self, fabric):
        with pytest.raises(MappingError):
            apply_orientation(fabric, 0, (4, 0))


class TestAssignmentRule:
    @given(c=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_small_context_counts_all_distinct(self, c, seed):
        """C <= 8: no two contexts share an orientation (paper rule a)."""
        orientations = assign_orientations(c, random.Random(seed))
        assert len(orientations) == c
        assert len(set(orientations)) == c

    @given(c=st.integers(9, 40), seed=st.integers(0, 1000))
    def test_large_context_counts_balanced(self, c, seed):
        """C > 8: each orientation appears C//8 or C//8 + 1 times and at
        least C//8 times (paper rule b)."""
        orientations = assign_orientations(c, random.Random(seed))
        assert len(orientations) == c
        base = c // NUM_ORIENTATIONS
        for orientation in range(NUM_ORIENTATIONS):
            count = orientations.count(orientation)
            assert base <= count <= base + 1

    def test_deterministic_under_seed(self):
        a = assign_orientations(16, random.Random(5))
        b = assign_orientations(16, random.Random(5))
        assert a == b

    def test_invalid_count(self):
        with pytest.raises(ArchitectureError):
            assign_orientations(0, random.Random(0))


def build_floorplan(fabric, critical):
    fp = Floorplan(fabric, 2)
    for op, (ctx, pe) in critical.items():
        fp.bind(op, ctx, pe)
    return fp


class TestFreezeAndRotatePlans:
    def test_freeze_keeps_positions(self, fabric):
        fp = build_floorplan(fabric, {0: (0, 5), 1: (1, 5)})
        plan = freeze_plan(fp, {0: [0], 1: [1]})
        assert plan.positions == {0: 5, 1: 5}
        assert set(plan.orientation_of_context.values()) == {0}

    def test_rotate_reduces_overlap(self, fabric):
        """Two contexts' critical ops on the same PE: rotation must
        separate them (any two distinct orientations map PE 5 apart...
        not always — but the overlap objective must not increase)."""
        fp = build_floorplan(fabric, {0: (0, 0), 1: (1, 0)})
        stress = {0: 3.0, 1: 3.0}
        plan = rotate_plan(fp, {0: [0], 1: [1]}, stress, random.Random(1), samples=8)
        frozen_pes = [plan.positions[0], plan.positions[1]]
        # With 8 sampled draws on a corner op, some draw separates them.
        assert frozen_pes[0] != frozen_pes[1]

    def test_rotation_preserves_intra_context_distances(self, fabric):
        fp = build_floorplan(
            fabric, {0: (0, 0), 1: (0, 1), 2: (0, 5)}
        )
        plan = rotate_plan(
            fp, {0: [0, 1, 2]}, {0: 1.0, 1: 1.0, 2: 1.0},
            random.Random(3), samples=1,
        )
        def dist(op_a, op_b, positions):
            pa, pb = positions[op_a], positions[op_b]
            ra, ca = divmod(pa, 4)
            rb, cb = divmod(pb, 4)
            return abs(ra - rb) + abs(ca - cb)
        original = {op: fp.pe_of[op] for op in (0, 1, 2)}
        assert dist(0, 1, plan.positions) == dist(0, 1, original)
        assert dist(1, 2, plan.positions) == dist(1, 2, original)

    def test_rotate_never_collides_within_context(self, fabric):
        fp = build_floorplan(
            fabric, {0: (0, 0), 1: (0, 1), 2: (0, 2), 3: (0, 3)}
        )
        plan = rotate_plan(
            fp, {0: [0, 1, 2, 3]}, {i: 1.0 for i in range(4)},
            random.Random(7), samples=4,
        )
        assert len(set(plan.positions.values())) == 4

    def test_samples_one_matches_paper_rule(self, fabric):
        """samples=1 must use exactly the constrained-random draw."""
        fp = build_floorplan(fabric, {0: (0, 6), 1: (1, 6)})
        rng_state = random.Random(11)
        expected = assign_orientations(2, random.Random(11))
        plan = rotate_plan(
            fp, {0: [0], 1: [1]}, {0: 1.0, 1: 1.0}, rng_state, samples=1
        )
        assert [
            plan.orientation_of_context[0],
            plan.orientation_of_context[1],
        ] == expected[:2]
