"""Floorplanning-as-a-service: crash-safe async job layer.

The service front end over the aging-aware flow: admission control and
load shedding (:mod:`~repro.service.admission`), a crash-safe
content-addressed artifact cache (:mod:`~repro.service.cache`), a
durable exactly-once job journal (:mod:`~repro.service.jobs`),
crash-isolated worker execution (:mod:`~repro.service.worker`), the
asyncio core (:mod:`~repro.service.service`), a stdlib HTTP server
(:mod:`~repro.service.server`) and client (:mod:`~repro.service.client`).

Start one with ``repro serve`` or embed :class:`FloorplanService`
directly; see ``docs/robustness.md`` ("Serving floorplans").
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cache import ArtifactCache
from repro.service.client import ServiceClient, read_endpoint
from repro.service.jobs import Job, JobStore, TERMINAL_STATES
from repro.service.request import FloorplanRequest, canonical_json, content_hash
from repro.service.server import ServiceServer
from repro.service.service import FloorplanService, ServiceConfig
from repro.service.worker import comparable_view, run_request

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ArtifactCache",
    "FloorplanRequest",
    "FloorplanService",
    "Job",
    "JobStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "TERMINAL_STATES",
    "canonical_json",
    "comparable_view",
    "content_hash",
    "read_endpoint",
    "run_request",
]
