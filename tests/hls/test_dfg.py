"""Dataflow-graph IR tests, including reference-semantics properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import OpKind
from repro.errors import HLSError
from repro.hls import DataflowGraph
from repro.hls.dfg import _truncate


@pytest.fixture
def graph():
    g = DataflowGraph("g")
    a = g.add_input("a")
    b = g.add_input("b")
    s = g.add_node(OpKind.ADD, (a, b))
    g.add_output(s, "y")
    return g


class TestConstruction:
    def test_ids_dense(self, graph):
        assert sorted(graph.nodes) == [0, 1, 2, 3]

    def test_arity_enforced(self, graph):
        with pytest.raises(HLSError):
            graph.add_node(OpKind.ADD, (0,))
        with pytest.raises(HLSError):
            graph.add_node(OpKind.NEG, (0, 1))

    def test_missing_producer_rejected(self):
        g = DataflowGraph()
        with pytest.raises(HLSError):
            g.add_node(OpKind.NEG, (7,))

    def test_successors_and_predecessors(self, graph):
        assert graph.successors(0) == [2]
        assert graph.predecessors(2) == (0, 1)

    def test_compute_classification(self, graph):
        assert [n.node_id for n in graph.compute_nodes()] == [2]
        assert graph.num_compute == 1
        assert len(graph.input_nodes()) == 2
        assert len(graph.output_nodes()) == 1

    def test_output_inherits_width(self):
        g = DataflowGraph()
        a = g.add_input("a", width=16)
        out = g.add_output(a, "y")
        assert g.node(out).width == 16

    def test_unknown_node_lookup(self, graph):
        with pytest.raises(HLSError):
            graph.node(99)


class TestTopologicalOrder:
    def test_respects_dependencies(self, graph):
        order = graph.topological_order()
        assert order.index(2) > order.index(0)
        assert order.index(3) > order.index(2)

    def test_validate_passes(self, graph):
        graph.validate()


class TestEvaluation:
    def test_straight_line(self, graph):
        assert graph.evaluate({"a": 3, "b": 4}) == {"y": 7}

    def test_missing_input_value(self, graph):
        with pytest.raises(HLSError):
            graph.evaluate({"a": 3})

    def test_select_semantics(self):
        g = DataflowGraph()
        c = g.add_input("c")
        t = g.add_const(10)
        f = g.add_const(20)
        sel = g.add_node(OpKind.SELECT, (c, t, f))
        g.add_output(sel, "y")
        assert g.evaluate({"c": 1}) == {"y": 10}
        assert g.evaluate({"c": 0}) == {"y": 20}

    def test_division_by_zero_yields_zero(self):
        g = DataflowGraph()
        a = g.add_input("a")
        z = g.add_const(0)
        d = g.add_node(OpKind.DIV, (a, z))
        g.add_output(d, "y")
        assert g.evaluate({"a": 5}) == {"y": 0}

    def test_width_wrapping(self):
        g = DataflowGraph()
        a = g.add_input("a", width=8)
        b = g.add_input("b", width=8)
        s = g.add_node(OpKind.ADD, (a, b), width=8)
        g.add_output(s, "y")
        assert g.evaluate({"a": 127, "b": 1}) == {"y": -128}

    def test_comparison_results(self):
        g = DataflowGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        lt = g.add_node(OpKind.LT, (a, b))
        g.add_output(lt, "y")
        assert g.evaluate({"a": 1, "b": 2}) == {"y": 1}
        assert g.evaluate({"a": 2, "b": 1}) == {"y": 0}


int32 = st.integers(-(2**31), 2**31 - 1)


class TestTruncationProperties:
    @given(value=st.integers(-(2**40), 2**40), width=st.sampled_from([8, 16, 32]))
    def test_truncate_range(self, value, width):
        result = _truncate(value, width)
        assert -(2 ** (width - 1)) <= result < 2 ** (width - 1)

    @given(value=int32)
    def test_truncate_identity_in_range(self, value):
        assert _truncate(value, 32) == value

    @given(a=int32, b=int32)
    def test_add_matches_wrapped_python(self, a, b):
        g = DataflowGraph()
        na, nb = g.add_input("a"), g.add_input("b")
        g.add_output(g.add_node(OpKind.ADD, (na, nb)), "y")
        assert g.evaluate({"a": a, "b": b})["y"] == _truncate(a + b, 32)

    @given(a=int32, b=int32)
    def test_xor_matches_python(self, a, b):
        g = DataflowGraph()
        na, nb = g.add_input("a"), g.add_input("b")
        g.add_output(g.add_node(OpKind.XOR, (na, nb)), "y")
        assert g.evaluate({"a": a, "b": b})["y"] == _truncate(a ^ b, 32)
