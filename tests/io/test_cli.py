"""CLI tests: each subcommand end to end through temporary files."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import load_design, load_floorplan


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "tiny.c"
    path.write_text("in int a, b; out int y = a * 3 + (b >> 1);")
    return path


class TestCompile:
    def test_compile_file(self, kernel_file, tmp_path, capsys):
        out = tmp_path / "design.json"
        assert main(["compile", str(kernel_file), "-o", str(out)]) == 0
        design = load_design(out)
        assert design.num_ops > 0
        assert "tiny" in capsys.readouterr().out

    def test_compile_library_kernel(self, tmp_path):
        out = tmp_path / "design.json"
        assert main(["compile", "checksum", "-o", str(out)]) == 0
        assert load_design(out).name == "checksum"

    def test_unknown_kernel(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compile", "not_a_kernel", "-o", str(tmp_path / "x.json")])


class TestPlaceRemapAnalyze:
    @pytest.fixture
    def design_path(self, kernel_file, tmp_path):
        out = tmp_path / "design.json"
        main(["compile", str(kernel_file), "-o", str(out)])
        return out

    def test_place(self, design_path, tmp_path, capsys):
        out = tmp_path / "fp.json"
        assert main(["place", str(design_path), "--fabric", "3x3",
                     "-o", str(out)]) == 0
        floorplan = load_floorplan(out)
        assert floorplan.fabric.rows == 3
        assert "utilization" in capsys.readouterr().out

    def test_remap_and_analyze(self, design_path, tmp_path, capsys):
        fp = tmp_path / "fp.json"
        main(["place", str(design_path), "--fabric", "4x4", "-o", str(fp)])
        remapped = tmp_path / "remapped.json"
        code = main([
            "remap", str(design_path), str(fp), "-o", str(remapped),
            "--time-limit", "20",
        ])
        assert code in (0, 2)  # 2 = fell back, still a valid floorplan
        assert load_floorplan(remapped).num_ops == load_floorplan(fp).num_ops
        assert main(["analyze", str(design_path), str(remapped)]) == 0
        out = capsys.readouterr().out
        assert "MTTF (years)" in out

    def test_invalid_fabric_string(self, design_path, tmp_path):
        with pytest.raises(SystemExit):
            main(["place", str(design_path), "--fabric", "banana"])


class TestFlowAndBench:
    def test_flow_with_record(self, kernel_file, tmp_path, capsys):
        record = tmp_path / "result.json"
        assert main([
            "flow", str(kernel_file), "--fabric", "4x4",
            "--time-limit", "20", "-o", str(record),
        ]) == 0
        data = json.loads(record.read_text())
        assert data["kind"] == "flow_result"
        assert data["summary"]["mttf_increase"] >= 1.0
        assert "MTTF increase" in capsys.readouterr().out

    def test_bench_command(self, capsys):
        assert main(["bench", "B1", "--time-limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "paper reference" in out

    def test_bench_one_explicit_form(self, capsys):
        assert main(["bench", "one", "B1", "--time-limit", "20"]) == 0
        assert "paper reference" in capsys.readouterr().out

    def test_bench_unknown_name_reports_error(self, capsys):
        assert main(["bench", "B99"]) == 1
        assert "error" in capsys.readouterr().err


class TestBenchPerfHarness:
    @pytest.fixture(scope="class")
    def bench_record(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "base.json"
        code = main([
            "bench", "run", "--benchmarks", "B1", "--time-limit", "10",
            "-o", str(path),
        ])
        assert code == 0
        return path

    def test_run_writes_schema_versioned_record(self, bench_record, capsys):
        data = json.loads(bench_record.read_text())
        assert data["kind"] == "bench_record"
        assert data["bench_schema"] == "repro.bench/1"
        entry = data["entries"]["B1"]
        assert entry["wall_s"] > 0
        assert entry["solver"]["solves"] > 0
        assert "stages" in entry

    def test_compare_self_passes(self, bench_record, capsys):
        assert main([
            "bench", "compare", str(bench_record), str(bench_record),
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_fails_on_synthetic_slowdown(
        self, bench_record, tmp_path, capsys
    ):
        slowed = json.loads(bench_record.read_text())
        for entry in slowed["entries"].values():
            entry["wall_s"] = entry["wall_s"] * 3.0 + 1.0
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slowed))
        assert main([
            "bench", "compare", str(bench_record), str(slow_path),
        ]) == 3
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_warn_only_downgrades_exit(self, bench_record, tmp_path, capsys):
        slowed = json.loads(bench_record.read_text())
        for entry in slowed["entries"].values():
            entry["wall_s"] = entry["wall_s"] * 3.0 + 1.0
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slowed))
        assert main([
            "bench", "compare", str(bench_record), str(slow_path),
            "--warn-only",
        ]) == 0


class TestTraceAndProfile:
    def test_trace_summarize_shows_convergence_table(
        self, kernel_file, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        assert main([
            "flow", str(kernel_file), "--fabric", "4x4",
            "--time-limit", "20", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "convergence (per solve)" in out
        assert "algorithm1:" in out
        assert "ST trajectory" in out

    def test_profile_writes_pstats_and_hotspots(
        self, kernel_file, tmp_path, capsys
    ):
        pstats_path = tmp_path / "flow.pstats"
        assert main([
            "flow", str(kernel_file), "--fabric", "4x4",
            "--time-limit", "20", "--profile", str(pstats_path),
        ]) == 0
        assert pstats_path.exists() and pstats_path.stat().st_size > 0
        err = capsys.readouterr().err
        assert "profile ->" in err
        assert "cumulative" in err

    def test_metrics_flag_prints_quantiles(self, kernel_file, capsys):
        assert main([
            "flow", str(kernel_file), "--fabric", "4x4",
            "--time-limit", "20", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "p50=" in out and "p95=" in out
