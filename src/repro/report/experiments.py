"""Experiment drivers regenerating every table and figure of the paper.

Command-line usage (also installed as ``repro-experiments``)::

    python -m repro.report.experiments table1 [--scale quick|paper] [--only B13 ...]
    python -m repro.report.experiments fig5  [--scale quick|paper]
    python -m repro.report.experiments fig2a
    python -m repro.report.experiments fig2b [--bench B13]

Scales
------
``quick``  caps fabrics at 8x8 via :meth:`Table1Entry.scaled` (minutes on a
laptop); ``paper`` runs the verbatim Table I configurations (hours for the
16x16 entries).  Both exercise the identical code path — only problem size
changes.  EXPERIMENTS.md records measured-vs-published values.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.benchgen.suite import TABLE1, Table1Entry
from repro.benchgen.synth import build_benchmark
from repro.core.algorithm1 import Algorithm1Config
from repro.core.flow import AgingAwareFlow, FlowConfig
from repro.core.remap import RemapConfig
from repro.obs import configure_logging, get_logger, span
from repro.report.figures import ascii_curve, bar_chart, series_csv, stress_grid
from repro.report.paper import (
    BenchmarkMeasurement,
    TABLE_HEADERS,
    class_averages,
    paper_class_averages,
    shape_checks,
)
from repro.report.tables import format_table

#: Fabric cap of the quick profile.
QUICK_MAX_FABRIC = 8

_log = get_logger("report.experiments")


def _log_line(message: str = "") -> None:
    """Library default output channel: the ``repro.*`` logger.

    The drivers accept any ``log`` callable; when none is given, lines go
    through ``repro.report.experiments`` at INFO instead of ``print`` so
    importing callers control the output policy.  The CLI entry point
    passes ``print`` explicitly — terminal output stays on stdout.
    """
    _log.info("%s", message)


@dataclass
class ExperimentConfig:
    """How to run a suite experiment."""

    scale: str = "quick"  # "quick" | "paper"
    seed: int = 0
    only: list[str] = field(default_factory=list)
    time_limit_s: float = 180.0

    def suite(self) -> list[Table1Entry]:
        entries = [
            e for e in TABLE1 if not self.only or e.name in self.only
        ]
        if self.scale == "quick":
            entries = [e.scaled(QUICK_MAX_FABRIC) for e in entries]
        elif self.scale != "paper":
            raise ValueError(f"unknown scale {self.scale!r}")
        return entries


def flow_config(
    mode: str, time_limit_s: float, max_iterations: int = 12
) -> FlowConfig:
    """Standard experiment flow configuration for one re-mapping mode."""
    return FlowConfig(
        algorithm1=Algorithm1Config(
            mode=mode,
            max_iterations=max_iterations,
            remap=RemapConfig(time_limit_s=time_limit_s),
        )
    )


def measure_benchmark(
    entry: Table1Entry, config: ExperimentConfig
) -> BenchmarkMeasurement:
    """Run Phase 1 once and Phase 2 in both modes for one benchmark.

    Phase 1 (placement + baseline evaluation) is mode-independent, so it
    is shared between the Freeze and Rotate measurements — exactly as in
    the paper, where both columns start from the same Musketeer floorplan.
    """
    from repro.aging.mttf import mttf_increase as compute_increase

    design, fabric = build_benchmark(entry.spec(config.seed))
    increases: dict[str, float] = {}
    baseline_flow = AgingAwareFlow(flow_config("freeze", config.time_limit_s))
    original = baseline_flow.phase1(design, fabric)
    for mode in ("freeze", "rotate"):
        flow = AgingAwareFlow(flow_config(mode, config.time_limit_s))
        remapped, remap = flow.phase2(design, fabric, original)
        if remap.final_cpd_ns > remap.original_cpd_ns + 1e-6:
            raise AssertionError(
                f"{entry.name}/{mode}: CPD increased — invariant broken"
            )
        increases[mode] = compute_increase(original.mttf, remapped.mttf)
    return BenchmarkMeasurement(
        entry=entry,
        freeze_increase=increases["freeze"],
        rotate_increase=increases["rotate"],
    )


def run_table1(config: ExperimentConfig, log=_log_line) -> list[BenchmarkMeasurement]:
    """Regenerate Table I (measured vs published)."""
    measurements: list[BenchmarkMeasurement] = []
    for entry in config.suite():
        with span("table1_entry", benchmark=entry.name) as entry_span:
            measurement = measure_benchmark(entry, config)
        measurements.append(measurement)
        log(
            f"{entry.name}: freeze {measurement.freeze_increase:.2f}x "
            f"(paper {entry.freeze_ref:.2f}) rotate "
            f"{measurement.rotate_increase:.2f}x (paper {entry.rotate_ref:.2f}) "
            f"[{entry_span.duration_s:.1f}s]"
        )
    log("")
    log(format_table(TABLE_HEADERS, [m.row() for m in measurements]))
    log("")
    measured_avg = class_averages(measurements)
    published_avg = paper_class_averages()
    rows = []
    for usage, (freeze, rotate) in measured_avg.items():
        p_freeze, p_rotate = published_avg[usage]
        rows.append([usage, freeze, p_freeze, rotate, p_rotate])
    log(format_table(
        ["usage", "freeze avg", "paper", "rotate avg", "paper"], rows
    ))
    log("")
    for check in shape_checks(measurements):
        status = "PASS" if check.holds else "MISS"
        log(f"[{status}] {check.name}: {check.detail}")
    return measurements


def run_fig5(config: ExperimentConfig, log=_log_line) -> None:
    """Regenerate Fig. 5: grouped bars by C/F group and usage class."""
    measurements = run_table1(config, log=lambda *_: None)
    groups: list[str] = []
    series: dict[str, list[float | None]] = {
        "low": [], "medium": [], "high": []
    }
    for entry in config.suite():
        if entry.group not in groups:
            groups.append(entry.group)
    by_key = {
        (m.entry.group, m.entry.usage_class): m.rotate_increase
        for m in measurements
    }
    for group in groups:
        for usage in series:
            series[usage].append(by_key.get((group, usage)))
    log("MTTF increase (x) by fabric group — Fig. 5")
    log(bar_chart(groups, series))


def run_fig2a(log=_log_line) -> None:
    """Regenerate Fig. 2(a): accumulated stress grids before/after."""
    from repro.benchgen.suite import entry as suite_entry

    design, fabric = build_benchmark(suite_entry("B1").spec())
    flow = AgingAwareFlow(flow_config("rotate", 60.0))
    result = flow.run(design, fabric)
    log("Original accumulated stress (ns) — aging-unaware floorplan:")
    log(stress_grid(fabric, result.original.stress.accumulated_ns))
    log(f"max = {result.original.stress.max_accumulated_ns:.2f} ns")
    log("")
    log("Re-mapped accumulated stress (ns) — aging-aware floorplan:")
    log(stress_grid(fabric, result.remapped.stress.accumulated_ns))
    log(f"max = {result.remapped.stress.max_accumulated_ns:.2f} ns")


def run_fig2b(bench: str = "B13", log=_log_line, csv: bool = False) -> None:
    """Regenerate Fig. 2(b): Vth shift vs time, original vs re-mapped."""
    from repro.aging.mttf import vth_curve
    from repro.benchgen.suite import entry as suite_entry

    design, fabric = build_benchmark(suite_entry(bench).scaled(8).spec())
    flow = AgingAwareFlow(flow_config("rotate", 120.0))
    result = flow.run(design, fabric)
    horizon = 1.3 * result.remapped.mttf.mttf_s
    original = vth_curve(result.original.mttf, "original", horizon_s=horizon)
    remapped = vth_curve(result.remapped.mttf, "re-mapped", horizon_s=horizon)
    if csv:
        log(series_csv([original, remapped]))
        return
    log(f"Vth shift vs time — {bench} (Fig. 2b)")
    log(ascii_curve([original, remapped]))
    log(f"MTTF increase: {result.mttf_increase:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment", choices=["table1", "fig5", "fig2a", "fig2b"]
    )
    parser.add_argument("--scale", default="quick", choices=["quick", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", default=[])
    parser.add_argument("--bench", default="B13")
    parser.add_argument("--csv", action="store_true")
    parser.add_argument("--time-limit", type=float, default=180.0)
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        only=list(args.only),
        time_limit_s=args.time_limit,
    )
    configure_logging(args.log_level)
    # CLI invocation: experiment output belongs on stdout, so the drivers
    # get ``print`` explicitly; library callers default to the repro logger.
    if args.experiment == "table1":
        run_table1(config, log=print)
    elif args.experiment == "fig5":
        run_fig5(config, log=print)
    elif args.experiment == "fig2a":
        run_fig2a(log=print)
    else:
        run_fig2b(bench=args.bench, log=print, csv=args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
