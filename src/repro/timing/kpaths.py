"""Enumeration of the longest timing paths (the paper's path filter).

The number of register-to-register paths grows exponentially with fabric
size, and the per-path delay constraints dominate the MILP's runtime
(Section V-B.2).  The paper therefore monitors only the longest paths:
"By default, we retain all paths whose initial delay is within 20% of the
CPD", capped at the M longest.  (The paper invokes Dijkstra for this; on a
DAG the equivalent exact method is longest-path dynamic programming, which
is what we use for bounds, plus a branch-and-bound DFS for enumeration.)

Paths that fall outside the filter are *unmonitored*: they may in
principle grow beyond the CPD after re-mapping, which is why Algorithm 1
re-checks the CPD of every accepted solution and relaxes ``ST_target``
when violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.context import Floorplan
from repro.hls.allocate import MappedDesign
from repro.kernels import sta as sta_kernel
from repro.kernels import vectorized
from repro.timing.graph import ContextTimingGraph, Endpoint, build_timing_graphs
from repro.timing.sta import DELAY_EPS, TimingPath, TimingReport, analyze, _wire_ns

#: Default retention window: paths within 20% of the CPD (paper default).
DEFAULT_RETENTION = 0.20

#: Default cap on the number of monitored paths per design.
DEFAULT_MAX_PATHS = 2000

#: Hard cap on DFS expansions per context, to bound worst-case enumeration.
_MAX_EXPANSIONS = 500_000


@dataclass
class MonitoredPath:
    """A timing path retained by the filter, with its original delay."""

    path: TimingPath
    delay_ns: float
    #: True when the path achieves its context's CPD (candidate for freezing).
    is_critical: bool = False


@dataclass
class PathFilterResult:
    """Output of the path filter over a whole design."""

    paths: list[MonitoredPath] = field(default_factory=list)
    threshold_ns: float = 0.0
    cpd_ns: float = 0.0
    truncated: bool = False  # the M-cap or expansion cap was hit

    @property
    def critical(self) -> list[MonitoredPath]:
        return [p for p in self.paths if p.is_critical]

    @property
    def non_critical(self) -> list[MonitoredPath]:
        return [p for p in self.paths if not p.is_critical]


def _continuations(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> dict[int, float]:
    """Longest completion achievable downstream from each op.

    ``cont[op]`` = best additional delay after op completes: 0 (stop at
    its output register) or the best (wire + delay + cont) over intra
    successors.  Pad wires carry no path delay (see repro.timing.sta).

    Vectorized via :mod:`repro.kernels.sta` under ``REPRO_KERNELS=vector``
    (bit-identical: exact ``max`` reductions, scalar association order).
    """
    if vectorized():
        cont = sta_kernel.continuations(graph, floorplan)
        if cont is not None:
            return cont
    return _continuations_scalar(graph, floorplan)


def _continuations_scalar(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> dict[int, float]:
    """The original reverse-topological Python DP (the kernel's reference)."""
    succs = graph.intra_succs()
    cont: dict[int, float] = {}
    for op in reversed(graph.topological_ops()):
        best = 0.0
        for succ in succs[op]:
            step = (
                _wire_ns(floorplan, Endpoint.op(op), Endpoint.op(succ))
                + graph.delay_of[succ]
                + cont[succ]
            )
            best = max(best, step)
        cont[op] = best
    return cont


def enumerate_context_paths(
    graph: ContextTimingGraph,
    floorplan: Floorplan,
    threshold_ns: float,
    context_cpd_ns: float,
    max_paths: int,
) -> tuple[list[MonitoredPath], bool]:
    """All paths of one context with delay >= ``threshold_ns``.

    Returns ``(paths, truncated)``.  DFS from every op with upper-bound
    pruning via the continuation DP, so only prefixes that can still reach
    the threshold are expanded.  Every op starts a path (its inputs latch
    from registers/pads at the cycle boundary with no path delay).
    """
    if not graph.ops:
        return [], False
    cont = _continuations(graph, floorplan)
    succs = graph.intra_succs()
    found: list[MonitoredPath] = []
    expansions = 0
    truncated = False

    # Per-edge wire delays are floorplan-pure, so they are hoisted out of
    # the DFS (which revisits edges on every expansion).  The vectorized
    # kernel and the per-edge scalar computation produce bit-identical
    # values; either way the DFS itself is unchanged.
    edge_ns: dict[tuple[int, int], float] | None = None
    if vectorized():
        edge_ns = sta_kernel.edge_wire_ns(graph, floorplan)
    if edge_ns is None:
        edge_ns = {
            (src, dst): _wire_ns(
                floorplan, Endpoint.op(src), Endpoint.op(dst)
            )
            for src, dst in graph.intra_edges
        }

    def dfs(chain: list[int], delay_so_far: float) -> None:
        nonlocal expansions, truncated
        expansions += 1
        if expansions > _MAX_EXPANSIONS or len(found) >= max_paths:
            truncated = True
            return
        op = chain[-1]
        # Terminate at this op's output register.
        if delay_so_far >= threshold_ns - DELAY_EPS:
            path = TimingPath(context=graph.context, chain=tuple(chain))
            found.append(
                MonitoredPath(
                    path=path,
                    delay_ns=delay_so_far,
                    is_critical=delay_so_far >= context_cpd_ns - DELAY_EPS,
                )
            )
        # Extend along successors that can still reach the threshold.
        for succ in succs[op]:
            step = edge_ns[(op, succ)] + graph.delay_of[succ]
            new_delay = delay_so_far + step
            if new_delay + cont[succ] >= threshold_ns - DELAY_EPS:
                chain.append(succ)
                dfs(chain, new_delay)
                chain.pop()

    for op in graph.topological_ops():
        start_delay = graph.delay_of[op]
        if start_delay + cont[op] >= threshold_ns - DELAY_EPS:
            dfs([op], start_delay)
    return found, truncated


def worst_path(
    design: MappedDesign,
    floorplan: Floorplan,
    graphs: list[ContextTimingGraph],
    report: TimingReport,
) -> MonitoredPath | None:
    """The CPD-achieving path of the slowest context on ``floorplan``.

    Used by the solve diagnostics to name the *culprit* of a CPD
    violation: when Algorithm 1 rejects a re-mapped floorplan because an
    unmonitored path grew past the original CPD, this is that path.
    """
    if not report.per_context:
        return None
    worst = max(
        range(len(report.per_context)),
        key=lambda i: report.per_context[i].cpd_ns,
    )
    timing = report.per_context[worst]
    if timing.cpd_ns <= 0.0:
        return None
    paths, _ = enumerate_context_paths(
        graphs[worst],
        floorplan,
        threshold_ns=timing.cpd_ns - DELAY_EPS,
        context_cpd_ns=timing.cpd_ns,
        max_paths=8,
    )
    if not paths:
        return None
    return max(paths, key=lambda monitored: monitored.delay_ns)


def filter_paths(
    design: MappedDesign,
    floorplan: Floorplan,
    retention: float = DEFAULT_RETENTION,
    max_paths: int = DEFAULT_MAX_PATHS,
    graphs: list[ContextTimingGraph] | None = None,
    report: TimingReport | None = None,
) -> PathFilterResult:
    """The paper's path filter over a whole design.

    Retains all paths with original delay >= ``(1 - retention) * CPD``
    (global CPD over contexts), keeping at most ``max_paths`` — the longest
    ones when the cap binds.
    """
    graphs = graphs or build_timing_graphs(design)
    report = report or analyze(design, floorplan, graphs)
    cpd = report.cpd_ns
    threshold = (1.0 - retention) * cpd
    all_paths: list[MonitoredPath] = []
    truncated = False
    # Enumerate with headroom: the DFS collects in traversal order, so a
    # tight per-context cap could drop long paths before the global sort.
    context_budget = max(4 * max_paths, 1000)
    for graph, timing in zip(graphs, report.per_context):
        paths, ctx_truncated = enumerate_context_paths(
            graph,
            floorplan,
            threshold_ns=threshold,
            context_cpd_ns=timing.cpd_ns,
            max_paths=context_budget,
        )
        all_paths.extend(paths)
        truncated = truncated or ctx_truncated
    all_paths.sort(key=lambda mp: -mp.delay_ns)
    if len(all_paths) > max_paths:
        all_paths = all_paths[:max_paths]
        truncated = True
    return PathFilterResult(
        paths=all_paths, threshold_ns=threshold, cpd_ns=cpd, truncated=truncated
    )
