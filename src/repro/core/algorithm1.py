"""Algorithm 1: the aging-aware re-mapping design flow.

The outer loop of the paper:

1. **Step 1** — delay-unaware binary search for the ST_target lower bound
   (:mod:`repro.core.targets`);
2. **Step 2.1** — critical-path constraint generation: freeze each
   context's critical paths, optionally rotating them among the 8 fabric
   symmetries to minimise overlap (:mod:`repro.core.rotation`);
3. **Step 2.2** — path-delay constraint generation: the within-20%-of-CPD
   filter (:mod:`repro.timing.kpaths`);
4. **Step 2.3** — repeat: solve Eq. (3) (two-step LP->ILP); on
   infeasibility, or when the re-mapped floorplan's *measured* CPD exceeds
   the original (an unmonitored path grew), relax ``ST_target`` by
   ``Delta`` and retry.

If no valid floorplan is found within the iteration budget the flow falls
back to the original floorplan (MTTF increase 1.0x) and reports it — the
paper's guarantee of *no delay degradation* is therefore unconditional.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.aging.stress import StressMap, compute_stress_map
from repro.arch.checks import check_frozen_ops
from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.core.remap import (
    GreedyContext,
    RemapConfig,
    WarmStart,
    build_remap_model,
    default_candidates,
    frozen_stress_by_pe,
    restamp_remap_model,
    solve_remap,
    solve_remap_sequential,
)
from repro.core.rotation import FrozenPlan, freeze_plan, rotate_plan
from repro.core.targets import (
    StressTargetResult,
    default_delta_ns,
    stress_target_lower_bound,
)
from repro.errors import (
    BudgetInfeasibleError,
    CertificationError,
    DeadlineExceededError,
    FlowError,
    SolverError,
)
from repro.explain import explain_enabled
from repro.hls.allocate import MappedDesign
from repro.milp.scipy_backend import ScipyBackend
from repro.milp.status import SolveStatus
from repro.obs import counter, event, get_logger, span
from repro.obs.solverstats import Algorithm1Stats
from repro.resilience.deadline import Deadline, current_deadline, deadline_scope
from repro.resilience.degrade import greedy_stress_level_remap
from repro.timing.graph import build_timing_graphs
from repro.timing.kpaths import (
    DEFAULT_MAX_PATHS,
    DEFAULT_RETENTION,
    filter_paths,
    worst_path,
)
from repro.timing.sta import all_critical_paths, analyze

#: CPD comparisons use this guard band (ns) against float noise.
CPD_EPS = 1e-6

_log = get_logger("core.algorithm1")


@dataclass
class Algorithm1Config:
    """All knobs of the aging-aware re-mapping flow."""

    #: "rotate" (full method) or "freeze" (Table I's ablation column).
    mode: str = "rotate"
    #: Path filter: retain paths within this fraction of the CPD.
    retention: float = DEFAULT_RETENTION
    max_paths: int = DEFAULT_MAX_PATHS
    #: ST_target relaxation stepsize; None derives the default from the
    #: original stress map (span / 20).
    delta_ns: float | None = None
    max_iterations: int = 25
    #: Random draws of the rotation rule evaluated for minimum overlap
    #: (1 = the paper's single constrained-random draw).
    rotation_samples: int = 8
    seed: int = 2020
    remap: RemapConfig = field(default_factory=RemapConfig)
    #: Allow ST_target to exceed ST_up by this factor before giving up.
    st_ceiling_factor: float = 1.5
    #: Independently certify every accepted floorplan (:mod:`repro.verify`):
    #: row-by-row feasibility against the uncompiled model plus
    #: first-principles stress/slot/frozen/CPD re-checks.  A failure
    #: triggers one cold-rebuild re-solve (catching silent restamp or
    #: warm-start corruption) before the degradation ladder engages.
    certify: bool = True


@dataclass
class RemapResult:
    """Everything Algorithm 1 produced."""

    floorplan: Floorplan
    st_target_ns: float
    original_cpd_ns: float
    final_cpd_ns: float
    iterations: int
    fell_back: bool
    frozen: FrozenPlan
    step1: StressTargetResult
    monitored_count: int
    critical_op_count: int
    stats: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    #: Degradation-ladder level that produced ``floorplan``: one of
    #: :data:`repro.resilience.DEGRADATION_LEVELS` ("none", "incumbent",
    #: "greedy", "original").
    degradation: str = "none"
    #: Outer-loop convergence record: Step-1 binary-search effort, the
    #: ST_target/Delta relaxation trajectory, per-iteration CPD verdicts
    #: and per-solve aggregates (also mirrored into ``stats["algorithm1"]``
    #: and the ``algorithm1.stats`` trace event).
    alg1: Algorithm1Stats = field(default_factory=Algorithm1Stats)
    #: Independent-certification verdict for ``floorplan``: ``True`` when
    #: the accepted MILP result passed :mod:`repro.verify`; ``None`` when
    #: certification was disabled or the floorplan came from a non-MILP
    #: ladder rung (greedy/original — nothing model-level to certify).  A
    #: certification failure never returns ``False``: it raises
    #: :class:`~repro.errors.CertificationError` internally and degrades,
    #: with the reason recorded in ``stats["degradation_reason"]``.
    certified: bool | None = None


def run_algorithm1(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    config: Algorithm1Config | None = None,
    original_stress: StressMap | None = None,
    backend: ScipyBackend | None = None,
    deadline: Deadline | None = None,
) -> RemapResult:
    """Execute the full aging-aware re-mapping flow on one design.

    Solver crashes, timeouts without an incumbent and an expiring
    ``deadline`` never propagate: the degradation ladder (incumbent →
    greedy stress-levelling → original floorplan) always returns a valid,
    CPD-preserving :class:`RemapResult`, with the level recorded on
    ``degradation``.
    """
    config = config or Algorithm1Config()
    if config.mode not in ("rotate", "freeze"):
        raise FlowError(f"unknown mode {config.mode!r}")
    backend = backend or config.remap.make_backend()
    with deadline_scope(deadline):
        with span("algorithm1", mode=config.mode) as alg_span:
            result = _run_algorithm1(
                design, fabric, original, config, original_stress, backend
            )
            result.elapsed_s = alg_span.duration_s
            alg_span.set(
                iterations=result.iterations,
                fell_back=result.fell_back,
                st_target_ns=result.st_target_ns,
                degradation=result.degradation,
            )
    _log.info(
        "%s: %d iteration(s), ST_target=%.3f ns, fell_back=%s, "
        "degradation=%s (%.2fs)",
        design.name,
        result.iterations,
        result.st_target_ns,
        result.fell_back,
        result.degradation,
        result.elapsed_s,
    )
    return result


def _run_algorithm1(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    config: Algorithm1Config,
    original_stress: StressMap | None,
    backend: ScipyBackend,
) -> RemapResult:
    rng = random.Random(config.seed)

    # Graph (and kernel-lowering) construction is structure work, not
    # timing analysis — keep it out of the sta span.
    graphs = build_timing_graphs(design)
    with span("sta"):
        report = analyze(design, original, graphs)
    cpd_orig = report.cpd_ns

    # -- Step 2.1: critical-path constraint generation -----------------------
    with span("critical_paths"):
        critical = all_critical_paths(design, original, graphs, report)
        critical_by_context: dict[int, list[int]] = {}
        for path in critical:
            bucket = critical_by_context.setdefault(path.context, [])
            for op in path.chain:
                if op not in bucket:
                    bucket.append(op)
        if config.mode == "freeze" or not fabric.is_square():
            frozen = freeze_plan(original, critical_by_context)
        else:
            stress_of = {op: info.stress_ns for op, info in design.ops.items()}
            frozen = rotate_plan(
                original,
                critical_by_context,
                stress_of,
                rng,
                samples=config.rotation_samples,
            )

    # -- Step 2.2: path-delay constraint generation ---------------------------
    with span("path_filter"):
        filtered = filter_paths(
            design,
            original,
            retention=config.retention,
            max_paths=config.max_paths,
            graphs=graphs,
            report=report,
        )
    monitored = filtered.non_critical

    # -- Step 1: ST_target lower bound -----------------------------------------
    original_stress = original_stress or compute_stress_map(design, original)
    delta = (
        config.delta_ns
        if config.delta_ns is not None
        else default_delta_ns(original_stress)
    )
    st_ceiling = original_stress.max_accumulated_ns * config.st_ceiling_factor

    # -- Step 2.3: solve / relax loop, wrapped by the degradation ladder ------
    deadline = current_deadline()
    relaxations = counter("algorithm1.st_target_relaxations")
    step1: StressTargetResult | None = None
    st_target = original_stress.max_accumulated_ns
    iterations = 0
    iteration_log: list[dict] = []
    explanations: list[dict] = []
    model = variables = None
    best: Floorplan | None = None
    final_cpd = cpd_orig
    degradation = "none"
    certified: bool | None = None
    failure: Exception | None = None
    alg1 = Algorithm1Stats(
        st_low_ns=original_stress.mean_accumulated_ns,
        st_up_ns=original_stress.max_accumulated_ns,
        delta_ns=delta,
    )
    try:
        step1 = stress_target_lower_bound(
            design,
            fabric,
            original,
            original_stress,
            config=config.remap,
            delta_ns=config.delta_ns,
            backend=backend,
        )
        alg1.bisection_steps = step1.bisection_steps
        alg1.ilp_bumps = step1.ilp_bumps
        _absorb_solve_stats(alg1, step1.stats)
        candidates = default_candidates(
            design, original, frozen, fabric, config.remap.resolved_window(fabric)
        )
        st_target = step1.st_target_ns
        # The Eq. (3) model is assembled once and re-stamped with each
        # relaxed ST_target; warm hints (previous pre-mapping/solution)
        # ride along between iterations of the same model.
        warm: WarmStart | None = None
        while iterations < config.max_iterations and st_target <= st_ceiling:
            deadline.check("algorithm1:iteration")
            iterations += 1
            counter("algorithm1.iterations").inc()
            with span(
                "iteration", index=iterations, st_target_ns=st_target
            ) as iter_span:
                entry, model, variables, warm = _run_iteration(
                    design, fabric, original, config, backend, frozen,
                    candidates, monitored, cpd_orig, st_target, iterations, graphs,
                    model=model, variables=variables, warm=warm,
                )
                iteration_log.append(entry)
                iter_span.set(result=entry["result"])
            if warm is not None:
                warm.reason = entry["result"]
            alg1.record_iteration(st_target, entry["result"])
            alg1.certifications += entry.get("certifications", 0)
            alg1.cert_failures += entry.get("cert_failures", 0)
            alg1.cert_cold_rebuilds += int(entry.get("cert_cold_rebuild", False))
            _absorb_solve_stats(alg1, entry)
            if entry["result"] != "accepted" and explain_enabled():
                explanations.append(
                    _explain_iteration(design.name, entry, cpd_orig)
                )
            _log.debug(
                "%s: iteration %d at ST_target=%.3f ns -> %s",
                design.name, iterations, st_target, entry["result"],
            )
            if entry["result"] == "accepted":
                best = entry.pop("floorplan")
                final_cpd = entry["new_cpd_ns"]
                certified = entry.get("certified")
                if _used_incumbent(entry):
                    # Accepted, but a solver limit was hit on the way: the
                    # floorplan came from a best-so-far incumbent, not a
                    # proven/gap-certified solve.
                    degradation = "incumbent"
                break
            relaxations.inc()
            st_target += delta
    except (SolverError, DeadlineExceededError, CertificationError) as exc:
        failure = exc
        if isinstance(exc, CertificationError):
            # The iteration's counters were lost with its entry; record the
            # terminal failure on the run-level aggregates directly.
            alg1.cert_failures += 1

    if best is None and explain_enabled():
        # The relax loop ended without an accepted floorplan: record the
        # terminal root cause (and, when the last verdict was infeasible,
        # extract an IIS from the still-stamped model) before the
        # degradation ladder overwrites the outcome.
        explanations.append(
            _explain_terminal(
                design.name, alg1, failure, iterations, config, st_target,
                st_ceiling, model,
            )
        )

    if failure is not None:
        # Ladder rung 2: solver path is gone (crash, timeout without
        # incumbent, or the budget expired) — try the solver-free greedy
        # stress-levelling re-map, gated by the same full-STA CPD check.
        counter("algorithm1.degradations").inc()
        _log.warning(
            "%s: solver path failed (%s: %s); trying greedy "
            "stress-levelling fallback",
            design.name, type(failure).__name__, failure,
        )
        # The greedy rung pins critical-path ops at their *original* PEs
        # (freeze semantics) regardless of mode: the descent starts from
        # the original floorplan, and rotation is meaningful only for the
        # MILP path that re-solves around the rotated pins.
        pinned = {op: original.pe_of[op] for op in frozen.positions}
        candidate = greedy_stress_level_remap(
            design, fabric, original, pinned, graphs=graphs
        )
        if candidate is not None:
            check_frozen_ops(original, candidate, pinned)
            with span("sta_verify"):
                fallback_report = analyze(design, candidate, graphs)
            if fallback_report.cpd_ns <= cpd_orig + CPD_EPS:
                best = candidate
                final_cpd = fallback_report.cpd_ns
                degradation = "greedy"
                st_target = compute_stress_map(
                    design, candidate
                ).max_accumulated_ns
        event(
            "algorithm1.degraded",
            benchmark=design.name,
            level=degradation if best is not None else "original",
            reason=type(failure).__name__,
            detail=str(failure),
        )

    fell_back = best is None
    if fell_back:
        # Ladder rung 3 (also the paper's unconditional fallback when the
        # relax loop exhausts its budget): keep the original floorplan.
        counter("algorithm1.fallbacks").inc()
        event("algorithm1.fallback", benchmark=design.name, iterations=iterations)
        best = original
        final_cpd = cpd_orig
        st_target = original_stress.max_accumulated_ns
        degradation = "original"
    if step1 is None:
        step1 = StressTargetResult(
            st_target_ns=st_target,
            st_low_ns=original_stress.mean_accumulated_ns,
            st_up_ns=original_stress.max_accumulated_ns,
            stats={"skipped": "degraded before Step 1 completed"},
        )
    snapshot = getattr(backend, "portfolio_snapshot", None)
    if snapshot is not None:
        # Racing backend: persist breaker states, per-lane win counts and
        # the race log onto the run's stats, so demotions survive into
        # saved records and `repro explain`.
        alg1.portfolio = snapshot()
    alg1.final_st_target_ns = st_target
    event(
        "algorithm1.stats",
        benchmark=design.name,
        degradation=degradation,
        **alg1.to_dict(),
    )
    stats = {
        "iterations": iteration_log,
        "path_filter_truncated": filtered.truncated,
        "algorithm1": alg1.to_dict(),
        "explanations": explanations,
    }
    if failure is not None:
        stats["degradation_reason"] = f"{type(failure).__name__}: {failure}"
    return RemapResult(
        floorplan=best,
        st_target_ns=st_target,
        original_cpd_ns=cpd_orig,
        final_cpd_ns=final_cpd,
        iterations=iterations,
        fell_back=fell_back,
        frozen=frozen,
        step1=step1,
        monitored_count=len(monitored),
        critical_op_count=len(frozen.positions),
        stats=stats,
        degradation=degradation,
        alg1=alg1,
        certified=certified,
    )


def _absorb_solve_stats(alg1: Algorithm1Stats, entry: dict) -> None:
    """Fold every per-solve :class:`SolveStats` dict found in an iteration
    (or Step-1) stats entry into the outer-loop aggregates.

    Handles all three strategies: two-step (``lp_stats``/``ilp_stats``),
    monolithic (``solve_stats``) and sequential (per-context sub-entries).
    """
    for key in ("lp_stats", "ilp_stats", "solve_stats"):
        alg1.absorb_solve(entry.get(key))
    for ctx in entry.get("contexts", ()):
        _absorb_solve_stats(alg1, ctx)


def _used_incumbent(entry: dict) -> bool:
    """Whether an accepted iteration leaned on a limit-hit incumbent.

    ``SolveStatus.FEASIBLE`` means "incumbent exists, optimality unproven"
    (node/time limit) for both backends; an accepted floorplan built from
    one is sound (the STA gate passed) but flagged as degradation level
    ``incumbent`` so sweeps show *why* a result may be weaker.
    """
    feasible = SolveStatus.FEASIBLE.value
    if entry.get("status") == feasible or entry.get("ilp_status") == feasible:
        return True
    return any(
        ctx.get("status") == feasible or ctx.get("ilp_status") == feasible
        for ctx in entry.get("contexts", ())
    )


def _solve_limit_reasons(entry) -> dict[str, str]:
    """Every non-empty ``limit_reason`` across an iteration's solve stats."""
    reasons: dict[str, str] = {}
    for key in ("lp_stats", "ilp_stats", "solve_stats"):
        stats = entry.get(key)
        if stats and stats.get("limit_reason"):
            reasons[key] = stats["limit_reason"]
    for index, ctx in enumerate(entry.get("contexts", ())):
        for key, value in _solve_limit_reasons(ctx).items():
            reasons[f"context{index}.{key}"] = value
    return reasons


def _explain_iteration(benchmark: str, entry: dict, cpd_orig: float) -> dict:
    """Structured "why was this iteration rejected" record + trace event."""
    cause: dict = {
        "iteration": entry["iteration"],
        "st_target_ns": entry["st_target_ns"],
        "cause": entry["result"],
    }
    if entry["result"] == "infeasible":
        status = entry.get("status") or entry.get("ilp_status")
        if status:
            cause["status"] = status
        reasons = _solve_limit_reasons(entry)
        if reasons:
            cause["limit_reasons"] = reasons
    elif entry["result"] == "cpd_violation":
        cause["new_cpd_ns"] = entry.get("new_cpd_ns")
        cause["cpd_orig_ns"] = cpd_orig
        if entry.get("culprit"):
            cause["culprit"] = entry["culprit"]
    elif entry["result"] == "frozen_budget_infeasible":
        for key in ("pe", "frozen_ns"):
            if entry.get(key) is not None:
                cause[key] = entry[key]
    event("algorithm1.explain", benchmark=benchmark, **cause)
    return cause


def _explain_terminal(
    benchmark: str,
    alg1: Algorithm1Stats,
    failure: Exception | None,
    iterations: int,
    config: Algorithm1Config,
    st_target: float,
    st_ceiling: float,
    model,
) -> dict:
    """Root cause of a run that ended with no accepted floorplan.

    When the final verdict was an infeasible solve and the Eq. (3) model
    is still in hand (stamped at the last tried ``ST_target``), an IIS is
    extracted so the trace names the conflicting constraints in domain
    terms.  A fault-injected "infeasible" comes out as ``status:
    feasible`` here — the model re-checks feasible — which is recorded
    honestly rather than papered over.
    """
    if failure is not None:
        terminal = {
            "DeadlineExceededError": "deadline",
            "CertificationError": "certification_failed",
        }.get(type(failure).__name__, "solver_error")
        detail = str(failure)
    elif iterations >= config.max_iterations:
        terminal = "iteration_budget_exhausted"
        detail = (
            f"max_iterations={config.max_iterations} reached without an "
            "accepted floorplan"
        )
    elif st_target > st_ceiling:
        terminal = "st_ceiling_exhausted"
        detail = (
            f"ST_target {st_target:.3f}ns exceeded the ceiling "
            f"{st_ceiling:.3f}ns (st_ceiling_factor="
            f"{config.st_ceiling_factor})"
        )
    else:
        terminal = "no_iterations"
        detail = "the relax loop never ran"
    cause: dict = {
        "cause": "terminal",
        "terminal_cause": terminal,
        "detail": detail,
        "iterations": iterations,
        "st_target_ns": st_target,
        "verdicts": list(alg1.verdicts),
    }
    last_verdict = alg1.verdicts[-1] if alg1.verdicts else ""
    if model is not None and last_verdict == "infeasible":
        from repro.explain import find_iis

        with span("explain_iis", model=model.name):
            iis = find_iis(model, time_limit_s=10.0)
        cause["iis"] = iis.to_dict()
    event("algorithm1.explain", benchmark=benchmark, **cause)
    return cause


def _run_iteration(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    config: Algorithm1Config,
    backend: ScipyBackend,
    frozen: FrozenPlan,
    candidates: dict[int, list[int]],
    monitored,
    cpd_orig: float,
    st_target: float,
    iteration: int,
    graphs,
    model=None,
    variables=None,
    warm: WarmStart | None = None,
) -> tuple:
    """One solve attempt of the relax loop.

    The Eq. (3) model is built on the first call and threaded back in by
    the caller afterwards: later iterations only re-stamp the ``st_target``
    RHS parameter on the cached lowering (:func:`restamp_remap_model`).
    ``warm`` carries the previous iteration's hints (see
    :class:`~repro.core.remap.WarmStart`); the caller stamps its ``reason``
    with the iteration verdict before passing it back.

    Returns ``(entry, model, variables, warm_out)``; ``entry["result"]``
    is one of ``accepted``, ``infeasible``, ``cpd_violation`` or
    ``frozen_budget_infeasible``, and an accepted entry additionally
    carries the candidate ``floorplan``.
    """
    if config.remap.strategy == "sequential":
        outcome = solve_remap_sequential(
            design, fabric, frozen, candidates, monitored,
            cpd_orig, st_target, config.remap, backend,
        )
        build_stats: dict = {}
    else:
        if model is None:
            # Built lazily (and re-tried each iteration while the frozen
            # stress alone busts the budget: a relaxed target can admit a
            # model that a tighter one could not).
            try:
                model, variables, build_stats = build_remap_model(
                    design, fabric, frozen, candidates, monitored,
                    cpd_orig, st_target, name="remap",
                    objective=config.remap.objective,
                )
            except BudgetInfeasibleError as exc:
                entry = {
                    "iteration": iteration,
                    "st_target_ns": st_target,
                    "result": "frozen_budget_infeasible",
                    "pe": getattr(exc, "pe_index", None),
                    "frozen_ns": getattr(exc, "frozen_ns", None),
                }
                return entry, None, None, None
        else:
            restamp_remap_model(model, st_target)
            build_stats = {"restamped": True}
        greedy_ctx = GreedyContext(
            design=design,
            fabric=fabric,
            frozen_positions=frozen.positions,
            st_target_ns=st_target,
            frozen_stress_ns=frozen_stress_by_pe(design, frozen),
        )
        outcome = solve_remap(
            model, variables, config.remap, backend, greedy_ctx, warm
        )
    entry = {
        "iteration": iteration,
        "st_target_ns": st_target,
        **build_stats,
        **outcome.stats,
    }
    warm_out = outcome.warm if config.remap.strategy != "sequential" else None
    if not outcome.feasible:
        entry["result"] = "infeasible"
        return entry, model, variables, warm_out
    candidate_fp = outcome.floorplan(original, frozen)
    check_frozen_ops(original, candidate_fp, frozen.positions)
    with span("sta_verify"):
        new_report = analyze(design, candidate_fp, graphs)
    entry["new_cpd_ns"] = new_report.cpd_ns
    if new_report.cpd_ns <= cpd_orig + CPD_EPS:
        if config.certify:
            return _certify_accepted(
                design, fabric, original, config, backend, frozen,
                candidates, monitored, cpd_orig, st_target, iteration,
                graphs, entry, candidate_fp, outcome, model, variables,
                warm_out,
            )
        entry["result"] = "accepted"
        entry["floorplan"] = candidate_fp
        return entry, model, variables, warm_out
    entry["result"] = "cpd_violation"
    if explain_enabled():
        culprit = worst_path(design, candidate_fp, graphs, new_report)
        if culprit is not None:
            entry["culprit"] = {
                "context": culprit.path.context,
                "ops": list(culprit.path.chain),
                "delay_ns": culprit.delay_ns,
            }
    return entry, model, variables, warm_out


def _certify_accepted(
    design,
    fabric,
    original,
    config: Algorithm1Config,
    backend,
    frozen: FrozenPlan,
    candidates,
    monitored,
    cpd_orig: float,
    st_target: float,
    iteration: int,
    graphs,
    entry: dict,
    candidate_fp: Floorplan,
    outcome,
    model,
    variables,
    warm_out,
) -> tuple:
    """Trust-but-verify gate on an accepted iteration.

    The floorplan (and, when a backend solution exists, the solution
    itself) is re-checked by :mod:`repro.verify` — an independent code
    path sharing nothing with the incremental compile/restamp/warm-start
    machinery.  On failure, the Eq. (3) model is rebuilt **cold** (fresh
    lowering, no warm start) and re-solved once: if the cold result
    certifies, the stale model state was corrupt and the cold model
    replaces it for the remaining iterations.  If even the cold path
    fails, a :class:`CertificationError` propagates to the degradation
    ladder.
    """
    from repro.verify.certifier import certify_remap

    is_cached = config.remap.strategy != "sequential"
    with span("certify", iteration=iteration):
        cert = certify_remap(
            design, candidate_fp, frozen.positions, st_target, cpd_orig,
            model=model if is_cached else None,
            solution=outcome.solution,
            graphs=graphs,
        )
    entry["certifications"] = 1
    if cert.ok:
        entry["result"] = "accepted"
        entry["certified"] = True
        entry["floorplan"] = candidate_fp
        return entry, model, variables, warm_out
    entry["cert_failures"] = 1
    if not is_cached:
        # The sequential strategy builds fresh models every call — there
        # is no cached state a cold rebuild could flush.
        cert.raise_if_failed(f"{design.name} iteration {iteration}")
    _log.warning(
        "%s: iteration %d failed certification; cold-rebuilding the model",
        design.name, iteration,
    )
    counter("verify.cold_rebuilds").inc()
    event(
        "certification.cold_rebuild",
        benchmark=design.name,
        iteration=iteration,
        violations=[v.kind for v in cert.violations[:8]],
    )
    entry["cert_cold_rebuild"] = True
    try:
        cold_model, cold_vars, _cold_stats = build_remap_model(
            design, fabric, frozen, candidates, monitored,
            cpd_orig, st_target, name="remap_cold",
            objective=config.remap.objective,
        )
    except BudgetInfeasibleError:
        cert.raise_if_failed(f"{design.name} iteration {iteration}")
    greedy_ctx = GreedyContext(
        design=design,
        fabric=fabric,
        frozen_positions=frozen.positions,
        st_target_ns=st_target,
        frozen_stress_ns=frozen_stress_by_pe(design, frozen),
    )
    cold_outcome = solve_remap(
        cold_model, cold_vars, config.remap, backend, greedy_ctx, None
    )
    if cold_outcome.feasible:
        cold_fp = cold_outcome.floorplan(original, frozen)
        check_frozen_ops(original, cold_fp, frozen.positions)
        with span("sta_verify"):
            cold_report = analyze(design, cold_fp, graphs)
        if cold_report.cpd_ns <= cpd_orig + CPD_EPS:
            with span("certify", iteration=iteration, cold_rebuild=True):
                cold_cert = certify_remap(
                    design, cold_fp, frozen.positions, st_target, cpd_orig,
                    model=cold_model,
                    solution=cold_outcome.solution,
                    graphs=graphs,
                )
            entry["certifications"] = 2
            if cold_cert.ok:
                entry["result"] = "accepted"
                entry["certified"] = True
                entry["new_cpd_ns"] = cold_report.cpd_ns
                entry["floorplan"] = cold_fp
                # The cold model supersedes the corrupt cached one for the
                # rest of the relax loop.
                return entry, cold_model, cold_vars, cold_outcome.warm
    cert.raise_if_failed(f"{design.name} iteration {iteration}")
    raise CertificationError(  # pragma: no cover - raise_if_failed always raises
        f"{design.name} iteration {iteration} failed certification"
    )
