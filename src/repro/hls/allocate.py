"""Technology mapping: scheduled DFG -> PE-level mapped design.

This is the last frontend step before placement, corresponding to the
"technology mapping onto the PEs" of the paper's Phase 1.  Every compute
node becomes a PE-level operation with its functional unit, delay and
per-execution stress time; dataflow edges are classified into

* **compute edges** (PE -> PE wires, possibly crossing contexts through the
  producer PE's output register),
* **input edges** (I/O pad -> PE), and
* **output edges** (PE -> I/O pad).

CONST producers impose no wires: immediates are baked into the consuming
PE's configuration word.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.opcodes import OpKind, UnitKind, op_delay_ns, unit_of
from repro.errors import HLSError
from repro.hls.dfg import DataflowGraph
from repro.hls.schedule import Schedule
from repro.units import CLOCK_PERIOD_NS


@dataclass(frozen=True)
class OpInfo:
    """PE-level characterisation of one mapped operation.

    ``stress_ns`` is the stress time the op deposits on its PE per
    execution of its context: the active time of the engaged functional
    unit within the clock cycle (paper Section III).
    """

    op_id: int
    kind: OpKind
    width: int
    context: int
    unit: UnitKind
    delay_ns: float
    stress_ns: float


@dataclass
class MappedDesign:
    """A technology-mapped, scheduled design ready for placement.

    Attributes
    ----------
    name:
        Benchmark name.
    num_contexts:
        Latency in cycles.
    ops:
        ``{op_id: OpInfo}`` for every compute operation.
    compute_edges:
        ``(producer op_id, consumer op_id)`` wires between PEs.
    input_edges:
        ``(input ordinal, consumer op_id)`` pad-to-PE wires.
    output_edges:
        ``(producer op_id, output ordinal)`` PE-to-pad wires.
    clock_period_ns:
        The design clock.
    source_dfg:
        The originating dataflow graph (None for synthetic designs built
        directly at the mapped level).
    """

    name: str
    num_contexts: int
    ops: dict[int, OpInfo] = field(default_factory=dict)
    compute_edges: list[tuple[int, int]] = field(default_factory=list)
    input_edges: list[tuple[int, int]] = field(default_factory=list)
    output_edges: list[tuple[int, int]] = field(default_factory=list)
    clock_period_ns: float = CLOCK_PERIOD_NS
    source_dfg: DataflowGraph | None = None

    # -- queries ---------------------------------------------------------------
    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def ops_in_context(self, context: int) -> list[OpInfo]:
        return sorted(
            (op for op in self.ops.values() if op.context == context),
            key=lambda op: op.op_id,
        )

    def context_sizes(self) -> list[int]:
        sizes = [0] * self.num_contexts
        for op in self.ops.values():
            sizes[op.context] += 1
        return sizes

    def max_context_size(self) -> int:
        return max(self.context_sizes(), default=0)

    def total_stress_ns(self) -> float:
        """Total stress deposited per schedule iteration — invariant under
        any re-mapping, since re-binding moves stress but never creates or
        destroys it."""
        return sum(op.stress_ns for op in self.ops.values())

    def consumers_of(self, op_id: int) -> list[int]:
        return [dst for src, dst in self.compute_edges if src == op_id]

    def producers_of(self, op_id: int) -> list[int]:
        return [src for src, dst in self.compute_edges if dst == op_id]

    def validate(self) -> None:
        """Structural checks; raises :class:`HLSError`."""
        for op in self.ops.values():
            if not 0 <= op.context < self.num_contexts:
                raise HLSError(f"op {op.op_id} in out-of-range context {op.context}")
            if op.delay_ns <= 0 or op.stress_ns <= 0:
                raise HLSError(f"op {op.op_id} has non-positive delay/stress")
        for src, dst in self.compute_edges:
            if src not in self.ops or dst not in self.ops:
                raise HLSError(f"edge ({src}, {dst}) references unknown ops")
            if self.ops[src].context > self.ops[dst].context:
                raise HLSError(
                    f"edge ({src}, {dst}) goes backwards in time: context "
                    f"{self.ops[src].context} -> {self.ops[dst].context}"
                )
        for _, dst in self.input_edges:
            if dst not in self.ops:
                raise HLSError(f"input edge consumer {dst} unknown")
        for src, _ in self.output_edges:
            if src not in self.ops:
                raise HLSError(f"output edge producer {src} unknown")


def tech_map(schedule: Schedule, name: str | None = None) -> MappedDesign:
    """Map a scheduled DFG onto PE operations.

    Op ids in the result are the DFG node ids of compute nodes, so results
    can be traced back to source.
    """
    dfg = schedule.dfg
    design = MappedDesign(
        name=name or dfg.name,
        num_contexts=schedule.num_contexts,
        source_dfg=dfg,
    )
    input_ordinal: dict[int, int] = {
        node.node_id: i for i, node in enumerate(dfg.input_nodes())
    }
    output_ordinal: dict[int, int] = {
        node.node_id: i for i, node in enumerate(dfg.output_nodes())
    }

    for node in dfg.compute_nodes():
        context = schedule.cycle_of.get(node.node_id)
        if context is None:
            raise HLSError(f"compute node {node.node_id} has no scheduled cycle")
        delay = op_delay_ns(node.kind, node.width)
        design.ops[node.node_id] = OpInfo(
            op_id=node.node_id,
            kind=node.kind,
            width=node.width,
            context=context,
            unit=unit_of(node.kind),
            delay_ns=delay,
            stress_ns=delay,
        )

    seen_compute: set[tuple[int, int]] = set()
    seen_input: set[tuple[int, int]] = set()
    for node in dfg.compute_nodes():
        for pred in node.inputs:
            pred_node = dfg.node(pred)
            if pred_node.kind is OpKind.CONST:
                continue  # immediate, no wire
            if pred_node.kind is OpKind.INPUT:
                edge = (input_ordinal[pred], node.node_id)
                if edge not in seen_input:
                    design.input_edges.append(edge)
                    seen_input.add(edge)
                continue
            edge = (pred, node.node_id)
            if edge not in seen_compute:
                design.compute_edges.append(edge)
                seen_compute.add(edge)
    for node in dfg.output_nodes():
        producer = node.inputs[0]
        producer_node = dfg.node(producer)
        if not producer_node.is_compute:
            continue  # constant/input wired straight to a pad: no PE involved
        design.output_edges.append((producer, output_ordinal[node.node_id]))

    design.validate()
    return design
