"""Ablation A3: the within-20%-of-CPD path filter.

Section V-B.2: "the path delay constraint dominates the runtime of (3)
... To reduce the number of timing paths ... we retain all paths whose
initial delay is within 20% of the CPD."  This ablation sweeps the
retention window and records: monitored-path count, model size, solve
time, and whether the final CPD check still passes (it must — Algorithm 1
re-checks regardless of how many paths are monitored).

Run::

    pytest benchmarks/bench_ablation_pathfilter.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_flow, scaled_entry
from repro.benchgen.synth import build_benchmark
from repro.core import Algorithm1Config, RemapConfig, run_algorithm1
from repro.place import place_baseline
from repro.timing import filter_paths

RETENTIONS = (0.05, 0.20, 0.50)


@pytest.fixture(scope="module")
def placed():
    entry = scaled_entry("B13")
    design, fabric = build_benchmark(entry.spec())
    floorplan = place_baseline(design, fabric)
    return design, fabric, floorplan


@pytest.mark.parametrize("retention", RETENTIONS)
def test_retention_window(benchmark, placed, retention):
    design, fabric, floorplan = placed
    monitored_count = len(
        filter_paths(design, floorplan, retention=retention).paths
    )
    config = Algorithm1Config(
        retention=retention, max_iterations=10,
        remap=RemapConfig(time_limit_s=15),
    )

    result = benchmark.pedantic(
        run_algorithm1, args=(design, fabric, floorplan, config),
        rounds=1, iterations=1,
    )

    # The invariant holds for every window size: CPD never increases.
    assert result.final_cpd_ns <= result.original_cpd_ns + 1e-6
    benchmark.extra_info.update(
        {
            "retention": retention,
            "monitored_paths": monitored_count,
            "constrained_paths": result.monitored_count,
            "iterations": result.iterations,
            "fell_back": result.fell_back,
        }
    )


def test_monitored_count_grows_with_window(placed):
    """Sanity on the filter itself: wider windows monitor more paths."""
    design, fabric, floorplan = placed
    counts = [
        len(filter_paths(design, floorplan, retention=r).paths)
        for r in RETENTIONS
    ]
    assert counts == sorted(counts)
    assert counts[0] >= 1
