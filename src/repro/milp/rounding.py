"""LP-relaxation rounding strategies for the two-step MILP method.

The paper (Section V-B, Step 1) relaxes the binary assignment variables
``OP_ijk`` to ``[0, 1]``, solves the LP, then **fixes to 1 every variable
whose LP value exceeds 0.95** before re-solving the remainder as an ILP.
The authors note they "did try other well-known approaches such as
randomized rounding, but they did not work as well" — both strategies are
implemented here so the comparison is reproducible
(``benchmarks/bench_ablation_rounding.py``).

Strategies operate on *assignment groups*: for each operation, the list of
binary variables (one per candidate PE) that must sum to one.  Fixing any
member to 1 implies the rest of the group is 0, which the strategies also
apply so the follow-up ILP shrinks as much as possible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ModelError
from repro.milp.expr import Variable
from repro.milp.model import Model
from repro.milp.status import Solution
from repro.obs import counter, get_logger, span

#: The paper's pre-mapping threshold.
DEFAULT_FIX_THRESHOLD = 0.95

_log = get_logger("milp.rounding")


@dataclass
class RoundingReport:
    """What a rounding pass did, for logging and the ablation benches."""

    groups_total: int = 0
    groups_fixed: int = 0
    variables_total: int = 0
    variables_fixed_one: int = 0
    variables_fixed_zero: int = 0
    strategy: str = ""
    details: dict = field(default_factory=dict)

    @property
    def fraction_fixed(self) -> float:
        """Share of assignment groups decided by the LP alone."""
        if self.groups_total == 0:
            return 0.0
        return self.groups_fixed / self.groups_total

    @property
    def variables_fixed(self) -> int:
        """Binary variables the pre-mapping removed from the residual ILP."""
        return self.variables_fixed_one + self.variables_fixed_zero

    @property
    def variables_free(self) -> int:
        """Binary variables that survived the pre-mapping into the ILP."""
        return self.variables_total - self.variables_fixed


def threshold_fix(
    model: Model,
    groups: Sequence[Sequence[Variable]],
    lp_solution: Solution,
    threshold: float = DEFAULT_FIX_THRESHOLD,
) -> RoundingReport:
    """Fix to 1 every group member whose LP value exceeds ``threshold``.

    This is the paper's strategy.  At most one member per group can exceed
    a threshold above 0.5 (the group sums to 1), so no conflicts can arise.
    Remaining members of a fixed group are pinned to 0.
    """
    if not 0.5 < threshold <= 1.0:
        raise ModelError(f"threshold must lie in (0.5, 1.0], got {threshold}")
    report = RoundingReport(
        groups_total=len(groups),
        variables_total=sum(len(group) for group in groups),
        strategy="threshold",
        details={"threshold": threshold},
    )
    with span("rounding", strategy="threshold") as round_span:
        for group in groups:
            winner = None
            for var in group:
                if lp_solution.value(var, 0.0) > threshold:
                    winner = var
                    break
            if winner is None:
                continue
            _fix_group(model, group, winner, report)
        round_span.set(
            groups_fixed=report.groups_fixed, groups_total=report.groups_total
        )
    _record_rounding(report)
    return report


def randomized_round(
    model: Model,
    groups: Sequence[Sequence[Variable]],
    lp_solution: Solution,
    rng: random.Random,
    min_mass: float = 0.5,
) -> RoundingReport:
    """Randomized rounding: sample each group's winner ∝ its LP mass.

    Groups whose largest LP value is below ``min_mass`` are left to the ILP
    (sampling from a near-uniform distribution would be noise, and this is
    still *more* aggressive than the paper's strategy — matching the
    comparison the authors describe).
    """
    report = RoundingReport(
        groups_total=len(groups),
        variables_total=sum(len(group) for group in groups),
        strategy="randomized",
        details={"min_mass": min_mass},
    )
    with span("rounding", strategy="randomized") as round_span:
        for group in groups:
            masses = [max(0.0, lp_solution.value(var, 0.0)) for var in group]
            total = sum(masses)
            if total <= 0.0 or max(masses) < min_mass:
                continue
            pick = rng.random() * total
            cumulative = 0.0
            winner = group[-1]
            for var, mass in zip(group, masses):
                cumulative += mass
                if pick <= cumulative:
                    winner = var
                    break
            _fix_group(model, group, winner, report)
        round_span.set(
            groups_fixed=report.groups_fixed, groups_total=report.groups_total
        )
    _record_rounding(report)
    return report


def _record_rounding(report: RoundingReport) -> None:
    """Registry + logging bookkeeping shared by the strategies."""
    counter("rounding.passes").inc()
    counter("rounding.groups_fixed").inc(report.groups_fixed)
    counter("rounding.vars_fixed").inc(
        report.variables_fixed_one + report.variables_fixed_zero
    )
    _log.debug(
        "%s rounding fixed %d/%d groups (%.0f%%)",
        report.strategy, report.groups_fixed, report.groups_total,
        100.0 * report.fraction_fixed,
    )


def _fix_group(
    model: Model,
    group: Sequence[Variable],
    winner: Variable,
    report: RoundingReport,
) -> None:
    """Pin ``winner`` to 1 and all other group members to 0."""
    model.fix_variable(winner, 1.0)
    report.variables_fixed_one += 1
    for var in group:
        if var is winner:
            continue
        model.fix_variable(var, 0.0)
        report.variables_fixed_zero += 1
    report.groups_fixed += 1


def extract_assignment(
    groups: Mapping[object, Sequence[tuple[Variable, object]]],
    solution: Solution,
    tol: float = 1e-4,
) -> dict:
    """Decode one-hot assignment groups from a solved model.

    Parameters
    ----------
    groups:
        ``{key: [(variable, payload), ...]}`` — e.g. key = operation,
        payload = candidate PE.
    solution:
        A solution with (near-)integral values for the group variables.

    Returns
    -------
    dict
        ``{key: payload}`` for the member of each group valued at 1.
    """
    decoded = {}
    for key, members in groups.items():
        chosen = [payload for var, payload in members if solution.value(var, 0.0) > 1 - tol]
        if len(chosen) != 1:
            raise ModelError(
                f"assignment group {key!r} decoded to {len(chosen)} winners "
                "(expected exactly 1); solution is not integral"
            )
        decoded[key] = chosen[0]
    return decoded
