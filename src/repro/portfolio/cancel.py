"""Cooperative cancellation tokens for racing solver lanes.

A :class:`CancelToken` is a thread-safe "stop asking, start stopping"
flag.  The portfolio executor installs one per race via
:func:`cancel_scope`; backends poll :func:`current_cancel_token` at their
iteration boundaries (branch-and-bound checks every node expansion, the
HiGHS backend checks at solve entry) and wind down with
``limit_reason="cancelled"`` instead of raising — a cancelled lane is a
*loser*, not a failure, so break-and-return semantics keep the loser's
partial stats intact for the race record.

The token rides a :mod:`contextvars` variable, exactly like deadlines and
spans, so each lane thread sees only its own token after the executor
copies a context per lane.  Outside any race the default token is a
singleton that never fires, so backend poll sites need no ``None`` guard.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Iterator


class CancelToken:
    """A one-way, thread-safe cancellation flag.

    ``cancel()`` may be called from any thread and is idempotent; pollers
    read :attr:`cancelled` (a lock-free ``Event.is_set``).  ``wait()``
    lets simulated hangs (the ``lane_hang`` fault) block until the race
    releases them instead of leaking a thread for the process lifetime.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> None:
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or ``timeout``); True when cancelled."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


#: Process-wide default: a token that is never cancelled.  Poll sites can
#: unconditionally read ``current_cancel_token().cancelled``.
_NEVER = CancelToken()

_current: contextvars.ContextVar[CancelToken] = contextvars.ContextVar(
    "repro_portfolio_cancel_token", default=_NEVER
)


def current_cancel_token() -> CancelToken:
    """The token governing this context (a never-firing one by default)."""
    return _current.get()


@contextlib.contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Install ``token`` as the current cancellation token for the body."""
    handle = _current.set(token)
    try:
        yield token
    finally:
        _current.reset(handle)
