"""Tokeniser for the mini-C behavioral input language.

The paper's flow starts from ANSI-C put through a commercial HLS tool
(Musketeer).  Our frontend accepts a synthesizable C subset sufficient for
the kernel benchmarks: integer types (``char``/``short``/``int``),
expressions over the C operator set, ``if``/``else`` (if-converted),
constant-bound ``for`` loops (fully unrolled), and fixed-size arrays with
indices that are compile-time constants after unrolling.  ``in``/``out``
qualifiers mark primary inputs and outputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"int", "short", "char", "if", "else", "for", "in", "out", "void", "return"}
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
)
_SINGLE_OPS = "+-*/%<>=!&|^~?"
_PUNCT = "(){}[];,:"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_op(self, *texts: str) -> bool:
        return self.kind is TokenKind.OP and self.text in texts

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in texts

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Convert mini-C source text into a token list ending with EOF.

    Raises :class:`~repro.errors.LexerError` on any character outside the
    language, with a line/column position.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = source[i]
        # -- whitespace ------------------------------------------------------
        if ch in " \t\r\n":
            advance(1)
            continue
        # -- comments ----------------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, column
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexerError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # -- numbers ------------------------------------------------------------
        if ch.isdigit():
            start, start_line, start_col = i, line, column
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    advance(1)
                if i == start + 2:
                    raise LexerError("malformed hex literal", start_line, start_col)
            else:
                while i < n and source[i].isdigit():
                    advance(1)
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexerError(
                    f"invalid character {source[i]!r} in number", line, column
                )
            tokens.append(Token(TokenKind.NUMBER, source[start:i], start_line, start_col))
            continue
        # -- identifiers / keywords ----------------------------------------------
        if ch.isalpha() or ch == "_":
            start, start_line, start_col = i, line, column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # -- operators --------------------------------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, column))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, ch, line, column))
            advance(1)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, line, column))
            advance(1)
            continue
        raise LexerError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
