"""End-to-end aging-aware CAD flow (paper Section IV, Fig. 3).

**Phase 1 — aging-unaware mapping and MTTF computation**: place the design
with the commercial-style baseline placer, run STA, build the stress map,
run the thermal simulation, and compute the baseline MTTF.

**Phase 2 — aging-aware re-mapping**: run Algorithm 1 to produce the
re-mapped floorplan, then re-evaluate stress, temperature and MTTF.

The flow's contract (tested as an invariant): the re-mapped CPD is never
larger than the original CPD, and the reported metric is
``MTTF(remapped) / MTTF(original)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.aging.mttf import MttfReport, compute_mttf, mttf_increase
from repro.aging.nbti import NbtiModel
from repro.aging.stress import StressMap, compute_stress_map
from repro.arch.checks import check_design_fits
from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.core.algorithm1 import Algorithm1Config, RemapResult, run_algorithm1
from repro.errors import DeadlineExceededError, ThermalError
from repro.hls.allocate import MappedDesign
from repro.obs import counter, event, get_logger, span
from repro.place.baseline import BaselinePlacerConfig, place_baseline
from repro.resilience.deadline import Deadline, deadline_scope, shielded
from repro.thermal.grid import ThermalGridConfig
from repro.thermal.hotspot import ThermalReport, ThermalSimulator
from repro.thermal.power import PowerModel

_log = get_logger("core.flow")


@dataclass
class FlowConfig:
    """Configuration of the complete CAD flow."""

    algorithm1: Algorithm1Config = field(default_factory=Algorithm1Config)
    placer: BaselinePlacerConfig = field(default_factory=BaselinePlacerConfig)
    thermal_grid: ThermalGridConfig = field(default_factory=ThermalGridConfig)
    power: PowerModel = field(default_factory=PowerModel)
    nbti: NbtiModel = field(default_factory=NbtiModel)
    #: Wall-clock budget for one :meth:`AgingAwareFlow.run` call, in
    #: seconds.  ``None`` = unlimited.  An explicit ``deadline`` argument
    #: to :meth:`~AgingAwareFlow.run` takes precedence.
    deadline_s: float | None = None


@dataclass
class FloorplanEvaluation:
    """Stress + thermal + lifetime evaluation of one floorplan."""

    floorplan: Floorplan
    stress: StressMap
    thermal: ThermalReport
    mttf: MttfReport


@dataclass
class FlowResult:
    """Everything the flow produced for one benchmark."""

    design: MappedDesign
    fabric: Fabric
    original: FloorplanEvaluation
    remapped: FloorplanEvaluation
    remap: RemapResult
    mttf_increase: float
    elapsed_s: float

    @property
    def cpd_preserved(self) -> bool:
        return self.remap.final_cpd_ns <= self.remap.original_cpd_ns + 1e-6

    def summary(self) -> dict:
        """Flat dict for tables and CSV output."""
        return {
            "benchmark": self.design.name,
            "contexts": self.design.num_contexts,
            "fabric": f"{self.fabric.rows}x{self.fabric.cols}",
            "pe_count": self.design.num_ops,
            "utilization": self.original.floorplan.utilization(),
            "mttf_increase": self.mttf_increase,
            "original_cpd_ns": self.remap.original_cpd_ns,
            "final_cpd_ns": self.remap.final_cpd_ns,
            "original_max_stress_ns": self.original.stress.max_accumulated_ns,
            "remapped_max_stress_ns": self.remapped.stress.max_accumulated_ns,
            "original_peak_k": self.original.thermal.peak_k,
            "remapped_peak_k": self.remapped.thermal.peak_k,
            "fell_back": self.remap.fell_back,
            "degradation": self.remap.degradation,
            "iterations": self.remap.iterations,
            "elapsed_s": self.elapsed_s,
        }


class AgingAwareFlow:
    """Facade running Phase 1 + Phase 2 on a mapped design."""

    def __init__(self, config: FlowConfig | None = None) -> None:
        self.config = config or FlowConfig()

    # -- building blocks ------------------------------------------------------
    def evaluate(
        self, design: MappedDesign, fabric: Fabric, floorplan: Floorplan
    ) -> FloorplanEvaluation:
        """Stress map -> thermal maps -> MTTF for any floorplan."""
        with span("evaluate"):
            with span("stress"):
                stress = compute_stress_map(design, floorplan)
            simulator = ThermalSimulator(
                fabric,
                grid_config=self.config.thermal_grid,
                power_model=self.config.power,
            )
            thermal = simulator.simulate(stress.duty_per_context())
            with span("mttf"):
                mttf = compute_mttf(
                    stress, thermal.accumulated_k, self.config.nbti
                )
        return FloorplanEvaluation(
            floorplan=floorplan, stress=stress, thermal=thermal, mttf=mttf
        )

    def phase1(self, design: MappedDesign, fabric: Fabric) -> FloorplanEvaluation:
        """Aging-unaware placement and baseline lifetime evaluation."""
        with span("phase1"):
            floorplan = place_baseline(design, fabric, self.config.placer)
            return self.evaluate(design, fabric, floorplan)

    def phase2(
        self,
        design: MappedDesign,
        fabric: Fabric,
        original: FloorplanEvaluation,
    ) -> tuple[FloorplanEvaluation, RemapResult]:
        """Aging-aware re-mapping and re-evaluation.

        Resilient by construction: Algorithm 1 never raises on solver
        failure or deadline expiry (its internal ladder degrades instead),
        and if the *re-evaluation* of the re-mapped floorplan dies (budget
        spent, thermal divergence) the original evaluation — already in
        hand from Phase 1 — is substituted and the result is marked as
        fully degraded.
        """
        with span("phase2"):
            remap = run_algorithm1(
                design,
                fabric,
                original.floorplan,
                config=self.config.algorithm1,
                original_stress=original.stress,
            )
            if remap.fell_back and remap.floorplan is original.floorplan:
                # Nothing new to evaluate; also spares the remaining budget.
                return original, remap
            try:
                return self.evaluate(design, fabric, remap.floorplan), remap
            except (DeadlineExceededError, ThermalError) as exc:
                counter("flow.phase2_recoveries").inc()
                event(
                    "phase2.degraded",
                    benchmark=design.name,
                    reason=type(exc).__name__,
                    detail=str(exc),
                )
                _log.warning(
                    "%s: re-evaluation of the re-mapped floorplan failed "
                    "(%s: %s); keeping the original floorplan",
                    design.name, type(exc).__name__, exc,
                )
                remap = replace(
                    remap,
                    floorplan=original.floorplan,
                    fell_back=True,
                    final_cpd_ns=remap.original_cpd_ns,
                    degradation="original",
                )
                return original, remap

    # -- the whole flow -------------------------------------------------------
    def run(
        self,
        design: MappedDesign,
        fabric: Fabric,
        deadline: Deadline | None = None,
    ) -> FlowResult:
        """Phase 1 + Phase 2 + MTTF comparison.

        Guarantee: the returned floorplan is never *worse* than the
        original.  When Algorithm 1 had to relax ``ST_target`` past the
        original maximum (e.g. an unlucky rotation pinning hot PEs), the
        re-mapped MTTF can fall below the baseline; the flow then keeps
        the original floorplan and reports an increase of exactly 1.0.

        ``deadline`` (or :attr:`FlowConfig.deadline_s`) bounds the whole
        call with one wall-clock budget.  Phase 1 is mandatory — without a
        baseline there is nothing to compare against — so it runs with
        deadline checks *shielded* (recorded, never raised), while its
        annealer still stops voluntarily on expiry.  Phase 2 runs
        unshielded and degrades down the ladder instead of raising, so an
        expired budget always still yields a valid (possibly degraded)
        :class:`FlowResult`.
        """
        check_design_fits(design, fabric)
        if deadline is None and self.config.deadline_s is not None:
            deadline = Deadline.after(self.config.deadline_s)
        with deadline_scope(deadline), span(
            "flow", benchmark=design.name
        ) as flow_span:
            counter("flow.runs").inc()
            with shielded():
                original = self.phase1(design, fabric)
            remapped, remap = self.phase2(design, fabric, original)
            increase = mttf_increase(original.mttf, remapped.mttf)
            if increase < 1.0:
                # The re-map lost lifetime (e.g. an unlucky rotation): keep
                # the original floorplan.  The returned RemapResult is a
                # copy — Algorithm 1's own result object stays untouched so
                # callers holding it (experiments, benches) see what the
                # solver actually produced.
                counter("flow.fallbacks").inc()
                event(
                    "flow.fallback",
                    benchmark=design.name,
                    mttf_increase=increase,
                )
                _log.warning(
                    "%s: re-mapped MTTF fell to %.3fx of baseline; "
                    "keeping the original floorplan",
                    design.name,
                    increase,
                )
                remap = replace(
                    remap,
                    floorplan=original.floorplan,
                    fell_back=True,
                    final_cpd_ns=remap.original_cpd_ns,
                    degradation="original",
                )
                remapped = original
                increase = 1.0
            result = FlowResult(
                design=design,
                fabric=fabric,
                original=original,
                remapped=remapped,
                remap=remap,
                mttf_increase=increase,
                elapsed_s=flow_span.duration_s,
            )
        _log.info(
            "%s: MTTF increase %.2fx in %.2fs (fell_back=%s)",
            design.name,
            result.mttf_increase,
            result.elapsed_s,
            result.remap.fell_back,
        )
        return result


def run_flow(
    design: MappedDesign,
    fabric: Fabric,
    config: FlowConfig | None = None,
    deadline: Deadline | None = None,
) -> FlowResult:
    """Convenience wrapper: one call from mapped design to MTTF increase."""
    return AgingAwareFlow(config).run(design, fabric, deadline=deadline)
