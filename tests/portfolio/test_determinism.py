"""Portfolio determinism: a healthy raced run equals the serial run.

The hedging contract (docs/robustness.md): with no faults injected and a
hedge window the leader finishes inside, backup lanes never start, so the
raced Algorithm 1 run is certified-identical to a serial run on the
leader backend — same floorplan, same CPD, same MTTF — while the trace
names the winning lane of every raced solve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging import compute_mttf, compute_stress_map
from repro.core import Algorithm1Config, RemapConfig, run_algorithm1
from repro.obs import CollectorSink, attached

pytest.importorskip("scipy")


def config(**remap_kw) -> Algorithm1Config:
    return Algorithm1Config(
        remap=RemapConfig(time_limit_s=30, **remap_kw)
    )


@pytest.fixture(scope="module")
def serial(synth_design, synth_floorplan, fabric4):
    return run_algorithm1(synth_design, fabric4, synth_floorplan, config())


@pytest.fixture(scope="module")
def raced(synth_design, synth_floorplan, fabric4):
    """One traced portfolio run shared by every assertion."""
    sink = CollectorSink()
    with attached(sink):
        result = run_algorithm1(
            synth_design,
            fabric4,
            synth_floorplan,
            config(portfolio=True, hedge_delay_s=30.0),
        )
    return result, sink


class TestRacedEqualsSerial:
    def test_identical_floorplan(self, serial, raced):
        result, _ = raced
        assert result.floorplan == serial.floorplan

    def test_identical_cpd(self, serial, raced):
        result, _ = raced
        assert result.final_cpd_ns == serial.final_cpd_ns
        assert result.original_cpd_ns == serial.original_cpd_ns

    def test_identical_mttf(self, serial, raced, synth_design):
        result, _ = raced
        stress_serial = compute_stress_map(synth_design, serial.floorplan)
        stress_raced = compute_stress_map(synth_design, result.floorplan)
        temperature = np.full(stress_serial.num_pes, 350.0)
        mttf_serial = compute_mttf(stress_serial, temperature)
        mttf_raced = compute_mttf(stress_raced, temperature)
        assert mttf_raced.mttf_s == mttf_serial.mttf_s

    def test_raced_run_is_certified(self, serial, raced):
        result, _ = raced
        assert result.certified is True
        assert serial.certified is True


class TestRaceAudit:
    def test_snapshot_persisted_on_stats(self, raced):
        result, _ = raced
        snapshot = result.alg1.portfolio
        assert snapshot is not None
        assert snapshot["solves"] >= 1
        # Healthy run: every raced solve was won, all by the leader.
        assert sum(snapshot["winners"].values()) == snapshot["solves"]
        assert set(snapshot["winners"]) == {"highs"}
        assert snapshot["breakers"]["highs"]["state"] == "closed"

    def test_winning_lane_named_in_trace(self, raced):
        _, sink = raced
        races = [
            record
            for record in sink.records
            if record.get("name") == "portfolio.race"
        ]
        assert races
        for record in races:
            attrs = record["attrs"]
            assert attrs["winner"] == "highs"
            lanes = {row["lane"]: row for row in attrs["lanes"]}
            # Bisection probes legitimately prove INFEASIBLE targets.
            assert lanes["highs"]["verdict"] in ("won", "infeasible")

    def test_no_lane_rejections_or_breaker_events(self, raced):
        _, sink = raced
        names = {record.get("name") for record in sink.records}
        assert "portfolio.lane_rejected" not in names
        assert "portfolio.breaker" not in names
        assert "certification.failed" not in names
