"""Vectorized evaluation kernels (structure-of-arrays hot paths).

PR 4 made the MILP side cheap; the remaining per-iteration cost of
Algorithm 1 is pure-Python *evaluation*: STA arrival propagation, stress
map assembly, thermal grid solves, and the row-by-row certification
audit.  This package holds numpy structure-of-arrays kernels for those
four stages, each paired with a cached *lowering* (CSR-style index
arrays derived once per structure, the same pattern as
:class:`repro.milp.model.CompiledModel`).

Bit-identity contract
---------------------
Every kernel must produce outputs **bit-identical** to the scalar code
path it replaces.  The kernels therefore restrict themselves to
reductions whose float semantics do not depend on evaluation order
(``max`` is exact) or whose order provably matches the scalar loop
(``np.add.at`` applies updates sequentially in index order; scipy's CSR
mat-vec accumulates each row sequentially in storage order).  The
equivalence suite in ``tests/kernels`` fuzzes both modes against each
other on random :mod:`repro.benchgen` designs.

Mode knob
---------
``REPRO_KERNELS=vector`` (default) enables the kernels;
``REPRO_KERNELS=scalar`` falls back to the original per-element Python
loops, which stay in place as the executable specification.  Tests can
override the mode for a scope with :func:`kernels_scope` (contextvar
based, so a portfolio lane on another thread is unaffected).

Observability
-------------
Every kernel call observes its wall time on a
``kernels.<name>.seconds`` histogram, and each lowering cache counts
``kernels.<name>.lowerings`` / ``kernels.<name>.cache_hits`` — the raw
material for the evaluation-stage breakdown in ``repro trace
summarize`` and ``repro explain``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.errors import KernelConfigError
from repro.obs import counter, current_span, histogram

#: Environment variable selecting the kernel mode.
KERNELS_ENV = "REPRO_KERNELS"

#: Recognised kernel modes.
KERNEL_MODES = ("vector", "scalar")

_override: ContextVar[str | None] = ContextVar("repro_kernels_mode", default=None)


def kernels_mode() -> str:
    """The active kernel mode: a scope override, else ``$REPRO_KERNELS``."""
    mode = _override.get()
    if mode is None:
        mode = os.environ.get(KERNELS_ENV, "vector").strip().lower() or "vector"
    if mode not in KERNEL_MODES:
        raise KernelConfigError(
            f"unknown kernel mode {mode!r} (expected one of {KERNEL_MODES}; "
            f"set via {KERNELS_ENV} or kernels_scope)"
        )
    return mode


def vectorized() -> bool:
    """True when the vectorized kernels are active."""
    return kernels_mode() == "vector"


@contextmanager
def kernels_scope(mode: str) -> Iterator[None]:
    """Force a kernel mode within a scope (tests, equivalence sweeps)."""
    if mode not in KERNEL_MODES:
        raise KernelConfigError(
            f"unknown kernel mode {mode!r} (expected one of {KERNEL_MODES})"
        )
    token = _override.set(mode)
    try:
        yield
    finally:
        _override.reset(token)


class kernel_timer:
    """Observe one kernel invocation on ``kernels.<name>.seconds``.

    Also stamps the enclosing span (``sta``, ``stress``, ``thermal``,
    ``certify``, ...) with ``kernels="vector"`` so traces show which
    evaluation stages ran vectorized.  A hand-rolled context manager
    (not ``@contextmanager``) because it sits on paths hot enough for
    generator frame overhead to register in the stage timings it exists
    to measure.
    """

    __slots__ = ("_metric", "_start")

    def __init__(self, name: str) -> None:
        self._metric = f"kernels.{name}.seconds"

    def __enter__(self) -> None:
        sp = current_span()
        if sp is not None:
            sp.set(kernels="vector")
        self._start = time.perf_counter()

    def __exit__(self, *exc_info) -> None:
        histogram(self._metric).observe(time.perf_counter() - self._start)


def note_lowering(name: str, hit: bool) -> None:
    """Count one lowering-cache lookup for kernel ``name``."""
    if hit:
        counter(f"kernels.{name}.cache_hits").inc()
    else:
        counter(f"kernels.{name}.lowerings").inc()


__all__ = [
    "KERNELS_ENV",
    "KERNEL_MODES",
    "kernel_timer",
    "kernels_mode",
    "kernels_scope",
    "note_lowering",
    "vectorized",
]
