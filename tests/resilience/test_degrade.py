"""The degradation ladder: greedy rung, level ordering, flow integration."""

from __future__ import annotations

import pytest

from repro.aging.stress import compute_stress_map
from repro.resilience import (
    DEGRADATION_LEVELS,
    fault_scope,
    greedy_stress_level_remap,
    worse_level,
)
from repro.timing.sta import analyze


class TestLevels:
    def test_order_best_to_worst(self):
        assert DEGRADATION_LEVELS == ("none", "incumbent", "greedy", "original")

    def test_worse_level(self):
        assert worse_level("none", "greedy") == "greedy"
        assert worse_level("original", "incumbent") == "original"
        assert worse_level("none", "none") == "none"


class TestGreedyRemap:
    def test_result_is_cpd_preserving_and_levels_stress(
        self, synth_design, fabric4, synth_floorplan
    ):
        original_report = analyze(synth_design, synth_floorplan)
        original_stress = compute_stress_map(synth_design, synth_floorplan)
        result = greedy_stress_level_remap(
            synth_design, fabric4, synth_floorplan, frozen_positions={}
        )
        assert result is not None
        # Every accepted move was STA-verified, so the CPD cannot grow.
        assert (
            analyze(synth_design, result).cpd_ns
            <= original_report.cpd_ns + 1e-6
        )
        new_stress = compute_stress_map(synth_design, result)
        assert (
            new_stress.max_accumulated_ns
            < original_stress.max_accumulated_ns
        )

    def test_original_floorplan_untouched(
        self, synth_design, fabric4, synth_floorplan
    ):
        before = dict(synth_floorplan.pe_of)
        greedy_stress_level_remap(
            synth_design, fabric4, synth_floorplan, frozen_positions={}
        )
        assert dict(synth_floorplan.pe_of) == before

    def test_frozen_ops_never_move(
        self, synth_design, fabric4, synth_floorplan
    ):
        stress = compute_stress_map(synth_design, synth_floorplan)
        hottest = stress.accumulated_ns.argmax()
        pinned = {
            op: synth_floorplan.pe_of[op]
            for op in synth_floorplan.pe_of
            if synth_floorplan.pe_of[op] == int(hottest)
        }
        assert pinned, "hottest PE should host at least one op"
        result = greedy_stress_level_remap(
            synth_design, fabric4, synth_floorplan, frozen_positions=pinned
        )
        if result is not None:
            for op, pe in pinned.items():
                assert result.pe_of[op] == pe

    def test_zero_budget_returns_none(
        self, synth_design, fabric4, synth_floorplan
    ):
        assert (
            greedy_stress_level_remap(
                synth_design, fabric4, synth_floorplan, {}, max_moves=0
            )
            is None
        )

    def test_deterministic(self, synth_design, fabric4, synth_floorplan):
        first = greedy_stress_level_remap(
            synth_design, fabric4, synth_floorplan, {}
        )
        second = greedy_stress_level_remap(
            synth_design, fabric4, synth_floorplan, {}
        )
        assert first is not None and second is not None
        assert dict(first.pe_of) == dict(second.pe_of)


class TestLadderInAlgorithm1:
    def _run(self, design, fabric, floorplan):
        from repro.core.algorithm1 import Algorithm1Config, run_algorithm1
        from repro.core.remap import RemapConfig

        return run_algorithm1(
            design,
            fabric,
            floorplan,
            Algorithm1Config(
                max_iterations=4, remap=RemapConfig(time_limit_s=10.0)
            ),
        )

    def test_clean_run_reports_none(
        self, synth_design, fabric4, synth_floorplan
    ):
        result = self._run(synth_design, fabric4, synth_floorplan)
        assert result.degradation == "none"
        assert not result.fell_back

    def test_solver_crash_degrades_with_cpd_preserved(
        self, synth_design, fabric4, synth_floorplan
    ):
        with fault_scope("solver_crash"):
            result = self._run(synth_design, fabric4, synth_floorplan)
        assert result.degradation in ("greedy", "original")
        assert result.final_cpd_ns <= result.original_cpd_ns + 1e-6
        assert "degradation_reason" in result.stats
        result.floorplan.validate()

    def test_solver_timeout_degrades(
        self, synth_design, fabric4, synth_floorplan
    ):
        with fault_scope("solver_timeout"):
            result = self._run(synth_design, fabric4, synth_floorplan)
        assert result.degradation in ("greedy", "original")
        assert result.final_cpd_ns <= result.original_cpd_ns + 1e-6

    def test_infeasible_model_falls_back_to_original(
        self, synth_design, fabric4, synth_floorplan
    ):
        # Proven infeasibility exhausts the relax loop: the paper's
        # unconditional fallback, not a solver failure.
        with fault_scope("infeasible_model"):
            result = self._run(synth_design, fabric4, synth_floorplan)
        assert result.fell_back
        assert result.degradation == "original"
        assert result.floorplan.pe_of == synth_floorplan.pe_of


class TestLadderInFlow:
    @pytest.fixture(scope="class")
    def flow(self):
        from repro.core.algorithm1 import Algorithm1Config
        from repro.core.flow import AgingAwareFlow, FlowConfig
        from repro.core.remap import RemapConfig

        return AgingAwareFlow(
            FlowConfig(
                algorithm1=Algorithm1Config(
                    max_iterations=4, remap=RemapConfig(time_limit_s=10.0)
                )
            )
        )

    def test_summary_reports_degradation(self, flow, synth_design, fabric4):
        result = flow.run(synth_design, fabric4)
        summary = result.summary()
        assert summary["degradation"] in DEGRADATION_LEVELS

    def test_every_fault_yields_valid_result(
        self, flow, synth_design, fabric4
    ):
        for fault in (
            "solver_crash",
            "solver_timeout",
            "infeasible_model",
            "thermal_divergence@2",
            "annealing_nan",
        ):
            with fault_scope(fault):
                result = flow.run(synth_design, fabric4)
            assert result.mttf_increase >= 1.0, fault
            assert result.cpd_preserved, fault
            assert result.remap.degradation in DEGRADATION_LEVELS, fault
            result.remapped.floorplan.validate()

    def test_phase2_reeval_thermal_failure_keeps_original(
        self, flow, synth_design, fabric4
    ):
        # Hit 1 is the Phase 1 baseline evaluation (shielded from faults?
        # no — spared by @2), hit 2 is the Phase 2 re-evaluation.
        with fault_scope("thermal_divergence@2"):
            result = flow.run(synth_design, fabric4)
        assert result.remap.degradation == "original"
        assert result.remap.fell_back
        assert result.mttf_increase == 1.0
