#!/usr/bin/env python
"""The paper's Fig. 4 worked example, executed step by step.

Builds the exact scenario of Section V-B.2: a 4x4 fabric with normalized
PE delay 2 and unit wire delay 1, a 3-op path (path1) and a 6-op critical
path (path3), and walks through the arithmetic the paper prints:

* path1 delay = 2x3 + 1x1x2 = 8
* path3 delay = 2x6 + 1x1x5 = 17  (the CPD)
* path1 wire-length bound = (17 - 6)/1 = 11, slack = 11 - 2 = 9

then runs the re-mapping MILP and shows that path1's ops move off the
stressed PEs while its wire length stays within the slack.

Usage::

    python examples/worked_example.py
"""

from __future__ import annotations

from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    solve_remap,
)
from repro.hls import MappedDesign, OpInfo
from repro.timing import TimingPath, all_critical_paths, analyze, filter_paths


def build_scene() -> tuple[MappedDesign, Fabric, Floorplan]:
    design = MappedDesign(name="fig4", num_contexts=1)
    # Uniform normalized PE delay of 2 ns, as in the figure.
    for op in range(9):
        design.ops[op] = OpInfo(op, OpKind.ADD, 32, 0, UnitKind.ALU, 2.0, 2.0)
    design.compute_edges = [
        (0, 1), (1, 2),                           # path1: 3 ops
        (3, 4), (4, 5), (5, 6), (6, 7), (7, 8),    # path3: 6 ops
    ]
    fabric = Fabric(4, 4, unit_wire_delay_ns=1.0)
    floorplan = Floorplan(fabric, 1)
    for op, pe in zip(range(3), (0, 4, 8)):        # path1 down column 0
        floorplan.bind(op, 0, pe)
    for op, pe in zip(range(3, 9), (1, 5, 9, 13, 14, 15)):  # path3 snake
        floorplan.bind(op, 0, pe)
    return design, fabric, floorplan


def main() -> None:
    design, fabric, floorplan = build_scene()
    report = analyze(design, floorplan)
    path1 = TimingPath(context=0, chain=(0, 1, 2))

    print(f"CPD (path3): {report.cpd_ns:.0f} ns    "
          f"path1 delay: {path1.delay_ns(design, floorplan):.0f} ns")
    bound = (report.cpd_ns - path1.pe_delay_ns(design)) / fabric.unit_wire_delay_ns
    slack = bound - path1.wire_length(floorplan)
    print(f"path1 wire-length bound: {bound:.0f}   current wires: "
          f"{path1.wire_length(floorplan):.0f}   slack: {slack:.0f}")
    assert report.cpd_ns == 17.0 and bound == 11.0 and slack == 9.0

    # Freeze the critical path, monitor everything else, and re-map with a
    # stress budget that forces path1's ops off their PEs.
    critical_ops = {op for p in all_critical_paths(design, floorplan) for op in p.chain}
    frozen = FrozenPlan(
        positions={op: floorplan.pe_of[op] for op in critical_ops},
        orientation_of_context={0: 0},
    )
    print(f"\nfrozen (critical) ops: {sorted(critical_ops)}")

    monitored = filter_paths(design, floorplan, retention=0.99).non_critical
    candidates = default_candidates(design, floorplan, frozen, fabric, None)
    model, variables, _ = build_remap_model(
        design, fabric, frozen, candidates, monitored,
        cpd_ns=report.cpd_ns, st_target_ns=2.0,  # one op per PE
    )
    outcome = solve_remap(model, variables, RemapConfig(time_limit_s=30))
    assert outcome.feasible
    remapped = outcome.floorplan(floorplan, frozen)

    new_report = analyze(design, remapped)
    print(f"re-mapped CPD: {new_report.cpd_ns:.0f} ns (unchanged: "
          f"{abs(new_report.cpd_ns - report.cpd_ns) < 1e-9})")
    print(f"path1 ops now on PEs: "
          f"{[remapped.pe_of[op] for op in (0, 1, 2)]} "
          f"(were {[floorplan.pe_of[op] for op in (0, 1, 2)]})")
    print(f"path1 wire length after re-mapping: "
          f"{path1.wire_length(remapped):.0f} (bound {bound:.0f})")
    assert path1.wire_length(remapped) <= bound + 1e-9


if __name__ == "__main__":
    main()
