"""Fabric geometry tests, including Manhattan-metric property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import Fabric
from repro.errors import ArchitectureError
from repro.units import UNIT_WIRE_DELAY_NS


@pytest.fixture
def fabric():
    return Fabric(4, 6)


class TestConstruction:
    def test_dimensions(self, fabric):
        assert fabric.num_pes == 24
        assert not fabric.is_square()
        assert Fabric(8, 8).is_square()

    def test_invalid_dimensions(self):
        with pytest.raises(ArchitectureError):
            Fabric(0, 4)

    def test_row_major_indexing(self, fabric):
        pe = fabric.pe(7)
        assert (pe.row, pe.col) == (1, 1)
        assert fabric.index_at(1, 1) == 7
        assert fabric.pe_at(1, 1) is pe

    def test_out_of_range(self, fabric):
        with pytest.raises(ArchitectureError):
            fabric.pe(24)
        with pytest.raises(ArchitectureError):
            fabric.pe_at(4, 0)

    def test_contains(self, fabric):
        assert (0, 0) in fabric
        assert (3, 5) in fabric
        assert (4, 0) not in fabric
        assert (-1, 0) not in fabric

    def test_iteration_covers_all(self, fabric):
        assert len(list(fabric)) == 24

    def test_coordinate_arrays(self, fabric):
        assert fabric.row_of[7] == 1.0
        assert fabric.col_of[7] == 1.0


class TestGeometry:
    def test_manhattan(self, fabric):
        a = fabric.index_at(0, 0)
        b = fabric.index_at(3, 5)
        assert fabric.manhattan(a, b) == 8

    def test_wire_delay_linear(self, fabric):
        assert fabric.wire_delay(0) == 0.0
        assert fabric.wire_delay(3) == pytest.approx(3 * UNIT_WIRE_DELAY_NS)

    def test_negative_length_rejected(self, fabric):
        with pytest.raises(ArchitectureError):
            fabric.wire_delay(-1)

    def test_neighbors_interior_and_corner(self, fabric):
        corner = fabric.index_at(0, 0)
        assert sorted(fabric.neighbors(corner)) == sorted(
            [fabric.index_at(1, 0), fabric.index_at(0, 1)]
        )
        interior = fabric.index_at(1, 1)
        assert len(fabric.neighbors(interior)) == 4

    def test_indices_by_distance_sorted(self, fabric):
        origin = fabric.index_at(2, 2)
        ordered = fabric.indices_by_distance(origin)
        assert ordered[0] == origin
        distances = [fabric.manhattan(origin, k) for k in ordered]
        assert distances == sorted(distances)
        assert len(ordered) == fabric.num_pes

    def test_center(self):
        assert Fabric(4, 4).center() == (1.5, 1.5)
        assert Fabric(3, 3).center() == (1.0, 1.0)


class TestPads:
    def test_input_pads_on_west(self, fabric):
        pad = fabric.input_pad(2)
        assert pad.col == -1.0
        assert pad.row == 2.0

    def test_output_pads_on_east(self, fabric):
        pad = fabric.output_pad(0)
        assert pad.col == float(fabric.cols)

    def test_pad_wrapping(self, fabric):
        assert fabric.input_pad(fabric.rows + 1).row == 1.0

    def test_manhattan_points_with_pads(self, fabric):
        pad = fabric.input_pad(0)
        pe = fabric.pe_at(0, 0)
        assert Fabric.manhattan_points(pad.position, pe.position) == 1.0


coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestMetricProperties:
    @given(a=coords, b=coords)
    def test_symmetry(self, a, b):
        fabric = Fabric(8, 8)
        ia, ib = fabric.index_at(*a), fabric.index_at(*b)
        assert fabric.manhattan(ia, ib) == fabric.manhattan(ib, ia)

    @given(a=coords, b=coords, c=coords)
    def test_triangle_inequality(self, a, b, c):
        fabric = Fabric(8, 8)
        ia, ib, ic = (fabric.index_at(*p) for p in (a, b, c))
        assert fabric.manhattan(ia, ic) <= (
            fabric.manhattan(ia, ib) + fabric.manhattan(ib, ic)
        )

    @given(a=coords, b=coords)
    def test_identity_of_indiscernibles(self, a, b):
        fabric = Fabric(8, 8)
        ia, ib = fabric.index_at(*a), fabric.index_at(*b)
        assert (fabric.manhattan(ia, ib) == 0) == (ia == ib)
