"""Crash-safe, content-addressed persistent artifact cache.

Serving floorplans to heavy duplicate traffic means most requests are
cache hits; a wrong or stale hit is worse than a miss, so the cache is
built distrustful:

* **Writes are atomic** — every entry goes through the shared
  ``write-tmp → fsync → rename`` helper (:mod:`repro.resilience.atomic`),
  so a crash mid-write never leaves a torn file under a valid key.
* **Every entry carries its own checksum** — a SHA-256 over the
  payload's canonical JSON, verified on every read.  Truncated, bit-
  flipped, mis-keyed or otherwise mangled entries are detected, counted
  (``service.cache_corrupt``), **quarantined** to a sidecar directory
  (never deleted — post-mortems want the evidence) and reported as a
  miss so the job recomputes.
* **Hits are re-certified** — before a cached ``flow_result`` is served,
  :func:`repro.verify.certify_artifact` re-derives its claims from the
  stored floorplans; an artifact that no longer certifies is quarantined
  and recomputed, never returned.

The ``service_cache_corrupt`` fault point corrupts entries at *write*
time so tests and CI can prove the read-side defences actually fire.
"""

from __future__ import annotations

import os
import pathlib
import json

from repro.errors import ReproError
from repro.obs import counter, event, get_logger
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.faults import should_inject
from repro.service.request import canonical_json, content_hash

_log = get_logger("service.cache")

#: Envelope schema version.
CACHE_SCHEMA = 1

#: Envelope document kind.
CACHE_KIND = "service_artifact"


class ArtifactCache:
    """Persistent map from cache key to certified ``flow_result`` payload.

    Layout::

        <root>/objects/<key[:2]>/<key>.json   # envelope {key, sha256, payload}
        <root>/quarantine/<key>.<n>.json      # corrupted/uncertifiable entries
    """

    def __init__(self, root: str | os.PathLike, certify: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.objects = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.certify = certify

    # -- paths ----------------------------------------------------------------
    def path_of(self, key: str) -> pathlib.Path:
        return self.objects / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        if not self.objects.exists():
            return 0
        return sum(1 for _ in self.objects.glob("*/*.json"))

    # -- writes ---------------------------------------------------------------
    def put(self, key: str, payload: dict) -> pathlib.Path:
        """Durably store ``payload`` under ``key`` (atomic replace).

        The envelope embeds a checksum of the payload's canonical JSON;
        the ``service_cache_corrupt`` fault point mangles the bytes on
        their way to disk — the write itself still "succeeds", exactly
        like real silent corruption, and the damage is caught on read.
        """
        envelope = {
            "schema": CACHE_SCHEMA,
            "kind": CACHE_KIND,
            "key": key,
            "sha256": content_hash(payload),
            "payload": payload,
        }
        data = (canonical_json(envelope) + "\n").encode("utf-8")
        if should_inject("service_cache_corrupt"):
            # Truncate mid-payload: a plausible torn/bit-rotted artifact
            # that still exists under the right name.
            data = data[: max(1, len(data) // 2)]
        path = self.path_of(key)
        atomic_write_bytes(path, data)
        counter("service.cache_writes").inc()
        return path

    # -- reads ----------------------------------------------------------------
    def fetch(self, key: str) -> dict | None:
        """The certified payload stored under ``key``, or ``None``.

        Every failure mode — missing file, unparseable JSON, wrong
        envelope shape, key mismatch, checksum mismatch, failed
        re-certification — is a miss; the damaged entry (when one
        exists) is quarantined first so it cannot be served next time
        either.  This function never raises and never returns a payload
        that failed a check.
        """
        path = self.path_of(key)
        if not path.exists():
            counter("service.cache_misses").inc()
            return None
        payload = self._read_checked(path, key)
        if payload is None:
            counter("service.cache_misses").inc()
            return None
        if self.certify and not self._certifies(path, key, payload):
            counter("service.cache_misses").inc()
            return None
        counter("service.cache_hits").inc()
        return payload

    def _read_checked(self, path: pathlib.Path, key: str) -> dict | None:
        """Parse + integrity-check one entry; quarantine on any failure."""
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            # UnicodeDecodeError is what a bit flip that sets a high bit
            # looks like: the file exists but is not text any more.
            self._quarantine(path, key, f"unreadable: {exc}")
            return None
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._quarantine(path, key, f"not valid JSON: {exc}")
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("kind") != CACHE_KIND
            or not isinstance(envelope.get("payload"), dict)
        ):
            self._quarantine(path, key, "not a service_artifact envelope")
            return None
        if envelope.get("schema") != CACHE_SCHEMA:
            # Also what a bit flip inside the schema field looks like —
            # every envelope byte is either checked or checksummed.
            self._quarantine(
                path, key,
                f"unsupported cache schema {envelope.get('schema')!r}",
            )
            return None
        if envelope.get("key") != key:
            self._quarantine(
                path, key, f"key mismatch (stored {envelope.get('key')!r})"
            )
            return None
        payload = envelope["payload"]
        digest = content_hash(payload)
        if envelope.get("sha256") != digest:
            self._quarantine(
                path, key,
                f"checksum mismatch (stored {envelope.get('sha256')!r}, "
                f"payload hashes to {digest!r})",
            )
            return None
        return payload

    def _certifies(self, path: pathlib.Path, key: str, payload: dict) -> bool:
        """Independently re-certify a hit before it is served."""
        from repro.verify import certify_artifact

        try:
            report = certify_artifact(payload)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            # An artifact the certifier cannot even parse is corrupt by
            # definition — quarantine it, never crash the fetch.
            report = {"ok": False, "certificate": {
                "violations": [{"detail": f"{type(exc).__name__}: {exc}"}],
            }}
        if report["ok"]:
            counter("service.cache_certified").inc()
            return True
        counter("service.cache_certify_failures").inc()
        violations = report.get("certificate", {}).get("violations", [])
        self._quarantine(
            path, key,
            f"certification failed ({len(violations)} violation(s))",
        )
        return False

    # -- quarantine -----------------------------------------------------------
    def _quarantine(self, path: pathlib.Path, key: str, reason: str) -> None:
        """Move a bad entry to the sidecar directory (atomic rename)."""
        counter("service.cache_corrupt").inc()
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(10_000):
            destination = self.quarantine_dir / f"{key}.{attempt}.json"
            if not destination.exists():
                break
        try:
            os.replace(path, destination)
        except OSError:  # pragma: no cover - raced with another process
            destination = None
        event(
            "service.cache_quarantined",
            key=key,
            reason=reason,
            quarantined_to=str(destination),
        )
        _log.warning(
            "cache entry %s quarantined (%s) -> %s", key[:12], reason,
            destination,
        )

    def quarantined(self) -> list[pathlib.Path]:
        """Quarantined entries, oldest first (post-mortem helper)."""
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.glob("*.json"))

    # -- reporting ------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "entries": len(self),
            "quarantined": len(self.quarantined()),
            "root": str(self.root),
        }
