"""Solve-explanation tests: domain tags, IIS extraction, attribution.

Covers the diagnostics contract end to end at the unit level:

* RowMeta domain tags round-trip through lowering, parameter restamps
  and warm re-solves bit-identically;
* deletion-filtering IIS extraction finds the minimal conflicting core,
  excludes redundant rows, reports fault-injected "infeasible" verdicts
  honestly, and survives zero-variable (all-frozen) models;
* binding/slack attribution names saturated PEs and tight families, and
  respects the ``set_explain`` opt-out;
* the forced-infeasible stress probe is genuinely infeasible and its
  IIS reads in stress/assignment domain terms.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.explain import (
    IISMember,
    IISResult,
    attribute_solution,
    attribution_brief,
    explain_enabled,
    find_iis,
    set_explain,
    verify_iis,
)
from repro.explain.iis import _Prober
from repro.explain.probe import build_infeasible_stress_model
from repro.milp import Model, ScipyBackend, SolveStatus, linear_sum


@pytest.fixture(autouse=True)
def _reset_explain():
    """Leave the tri-state override untouched for other tests."""
    yield
    set_explain(None)


# -- domain-tag round-trips ----------------------------------------------------


class TestDomainTags:
    def test_tags_surface_in_row_metadata(self):
        model = Model("t")
        x = model.add_binary("x")
        model.add_constraint(
            x <= 1, name="cap", tags={"family": "stress", "pe": 3}
        )
        (meta,) = model.row_metadata()
        assert meta.name == "cap"
        assert meta.tags == {"family": "stress", "pe": 3}

    def test_tags_survive_lowering(self):
        model = Model("t")
        x, y = model.add_binary("x"), model.add_binary("y")
        model.add_constraint(
            x + y <= 1, name="excl", tags={"family": "exclusivity", "pe": 0}
        )
        model.add_constraint(
            x + y >= 1, name="assign", tags={"family": "assignment", "op": 7}
        )
        form = model.to_matrix_form()
        metas = model.row_metadata()
        assert form.a_matrix.shape[0] == len(metas) == 2
        assert [m.tags["family"] for m in metas] == ["exclusivity", "assignment"]

    def test_tags_survive_parameter_restamp(self):
        model = Model("t")
        x = model.add_continuous("x", 0, 10)
        model.declare_parameter("st", 5.0)
        tags = {"family": "stress", "pe": 1, "row": 0, "col": 1}
        model.add_constraint(
            1.0 * x <= 5.0, name="budget", parameter="st", tags=tags
        )
        model.set_parameter("st", 7.0)
        (meta,) = model.row_metadata()
        assert meta.rhs == 7.0
        assert meta.tags == tags

    def test_restamp_matches_fresh_build_bit_identically(self):
        def build(value):
            model = Model("t")
            x = model.add_continuous("x", 0, 10)
            model.declare_parameter("st", value)
            model.add_constraint(
                1.0 * x <= value, name="budget", parameter="st",
                tags={"family": "stress", "pe": 0},
            )
            return model

        fresh = build(7.25)
        restamped = build(5.0)
        restamped.set_parameter("st", 6.0)
        restamped.set_parameter("st", 7.25)
        for a, b in zip(fresh.row_metadata(), restamped.row_metadata()):
            assert a.rhs == b.rhs  # exact float equality, not approx
            assert a.tags == b.tags
        assert np.array_equal(
            fresh.to_matrix_form().rhs, restamped.to_matrix_form().rhs
        )

    def test_tags_stable_across_warm_resolves(self):
        model = Model("t")
        x, y = model.add_binary("x"), model.add_binary("y")
        model.add_constraint(
            linear_sum([x, y]) <= 1, name="excl",
            tags={"family": "exclusivity", "context": 0, "pe": 2},
        )
        model.set_objective(2 * x + y, minimize=False)
        backend = ScipyBackend()
        snapshot = [
            (m.index, m.name, m.sense, m.rhs, dict(m.tags))
            for m in model.row_metadata()
        ]
        for _ in range(3):
            assert model.solve(backend).status is SolveStatus.OPTIMAL
            after = [
                (m.index, m.name, m.sense, m.rhs, dict(m.tags))
                for m in model.row_metadata()
            ]
            assert after == snapshot

    def test_certifier_violation_carries_tags(self):
        from repro.verify.certifier import Violation

        violation = Violation(
            kind="row",
            subject="stress[3]",
            detail="stress budget exceeded",
            magnitude=0.5,
            tags={"family": "stress", "pe": 3},
        )
        assert violation.to_dict()["tags"] == {"family": "stress", "pe": 3}


# -- IIS extraction ------------------------------------------------------------


def conflict_model(redundant_rows: int = 0) -> Model:
    """``x >= 1`` and ``x <= 0`` conflict; everything else is satisfiable."""
    model = Model("conflict")
    x = model.add_binary("x")
    model.add_constraint(x >= 1, name="need_x", tags={"family": "assignment"})
    model.add_constraint(x <= 0, name="deny_x", tags={"family": "exclusivity"})
    for i in range(redundant_rows):
        slack_var = model.add_continuous(f"s{i}", 0, 10)
        model.add_constraint(
            1.0 * slack_var <= 9.0, name=f"loose[{i}]", tags={"family": "stress"}
        )
    return model


class TestIIS:
    def test_finds_minimal_verified_core(self):
        iis = find_iis(conflict_model())
        assert iis.status == "iis"
        assert iis.minimal and iis.verified
        assert {m.name for m in iis.members} == {"need_x", "deny_x"}

    def test_redundant_rows_excluded(self):
        model = conflict_model(redundant_rows=6)
        iis = find_iis(model)
        assert {m.name for m in iis.members} == {"need_x", "deny_x"}
        assert iis.families == {"assignment": 1, "exclusivity": 1}
        assert verify_iis(model, iis)

    def test_minimality_every_member_necessary(self):
        # Three-way conflict: x+y >= 3 cannot hold with x <= 1, y <= 1.
        model = Model("three")
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y >= 3, name="demand")
        model.add_constraint(1.0 * x <= 1, name="cap_x")
        model.add_constraint(1.0 * y <= 1, name="cap_y")
        iis = find_iis(model)
        assert iis.status == "iis" and iis.minimal and iis.verified
        assert {m.name for m in iis.members} == {"demand", "cap_x", "cap_y"}
        assert verify_iis(model, iis)

    def test_verify_rejects_non_minimal_superset(self):
        model = conflict_model(redundant_rows=2)
        iis = find_iis(model)
        metas = model.row_metadata()
        padded = IISResult(
            status="iis",
            members=iis.members + (
                IISMember(
                    index=2, name=metas[2].name, sense=metas[2].sense,
                    rhs=float(metas[2].rhs), tags=dict(metas[2].tags),
                ),
            ),
            minimal=True,
            verified=True,
        )
        assert not verify_iis(model, padded)

    def test_feasible_model_reported_honestly(self):
        # The fault-injection scenario: verdict said infeasible, model is not.
        model = Model("fine")
        x = model.add_binary("x")
        model.add_constraint(x <= 1, name="cap")
        iis = find_iis(model)
        assert iis.status == "feasible"
        assert not iis.members
        assert "feasible" in iis.describe()

    def test_result_to_dict_is_json_safe(self):
        import json

        iis = find_iis(conflict_model())
        payload = iis.to_dict()
        json.dumps(payload)
        assert payload["status"] == "iis"
        assert len(payload["members"]) == 2
        assert payload["members"][0]["tags"]

    def test_zero_variable_rows_probed_directly(self):
        # An all-frozen remap model lowers to rows over zero columns; the
        # prober must decide them by direct bound checks (scipy rejects an
        # empty cost vector).
        class FakeForm:
            a_matrix = csr_matrix((2, 0))
            senses = ["<=", "<="]
            rhs = np.array([-1.0, 1.0])
            lower = np.zeros(0)
            upper = np.zeros(0)
            integrality = np.zeros(0)

        prober = _Prober(FakeForm(), time_limit_s=5.0, probe_limit_s=1.0)
        assert prober.infeasible(np.array([0, 1])) is True  # 0 <= -1 violated
        assert prober.infeasible(np.array([1])) is False
        assert prober.infeasible(np.arange(0)) is False


# -- attribution ---------------------------------------------------------------


def tagged_model():
    model = Model("attr")
    x, y = model.add_binary("x"), model.add_binary("y")
    model.add_constraint(
        x + y <= 2, name="stress[3]", tags={"family": "stress", "pe": 3}
    )
    model.add_constraint(
        1.0 * x <= 5, name="loose", tags={"family": "distance", "segment": 0}
    )
    model.set_objective(x + y, minimize=False)
    return model


class TestAttribution:
    def test_binding_rows_named_in_domain_terms(self):
        model = tagged_model()
        form = model.to_matrix_form()
        attribution = attribute_solution(
            form, np.array([1.0, 1.0]), model.row_metadata()
        )
        assert attribution["rows"] == 2
        assert attribution["binding"] == 1
        assert attribution["families"]["stress"]["binding"] == 1
        assert attribution["families"]["distance"]["binding"] == 0
        assert attribution["saturated_pes"] == [3]
        (top,) = attribution["top_binding"]
        assert top["name"] == "stress[3]" and top["tags"]["pe"] == 3

    def test_brief_compacts_for_span_attrs(self):
        model = tagged_model()
        attribution = attribute_solution(
            model.to_matrix_form(), np.array([1.0, 1.0]), model.row_metadata()
        )
        brief = attribution_brief(attribution)
        assert brief["binding"] == 1
        assert brief["families"] == {"stress": 1, "distance": 0}
        assert brief["top"] == ["stress[3]"]
        assert attribution_brief(None) is None

    def test_attribution_attached_on_feasible_solve(self):
        set_explain(True)
        solution = tagged_model().solve(ScipyBackend())
        assert solution.status is SolveStatus.OPTIMAL
        attribution = solution.stats.attribution
        assert attribution is not None and attribution["binding"] >= 1
        assert "attribution" in solution.stats.span_attrs()

    def test_opt_out_disables_attribution(self):
        set_explain(False)
        assert not explain_enabled()
        solution = tagged_model().solve(ScipyBackend())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats.attribution is None

    def test_env_var_opt_out(self, monkeypatch):
        set_explain(None)
        monkeypatch.setenv("REPRO_EXPLAIN", "0")
        assert not explain_enabled()
        monkeypatch.setenv("REPRO_EXPLAIN", "1")
        assert explain_enabled()


# -- forced-infeasible probe ---------------------------------------------------


class TestProbe:
    def test_probe_is_infeasible_with_stress_core(self, small_design, fabric4):
        model, st_target = build_infeasible_stress_model(
            small_design, fabric4, factor=0.9
        )
        assert st_target > 0
        iis = find_iis(model, time_limit_s=60.0)
        assert iis.status == "iis"
        assert "stress" in iis.families
        assert iis.involves["pes"]  # names concrete PEs
        assert verify_iis(model, iis)

    def test_probe_rejects_bad_factor(self, small_design, fabric4):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            build_infeasible_stress_model(small_design, fabric4, factor=1.5)
