"""Simulated-annealing refinement tests."""

from __future__ import annotations

import pytest

from repro.arch import Fabric
from repro.place import AnnealingConfig, anneal_placement, greedy_place
from repro.place.cost import wirelength


def total_wirelength(design, floorplan):
    fabric = floorplan.fabric
    edges = []
    for src, dst in design.compute_edges:
        edges.append((floorplan.position_of(src), floorplan.position_of(dst)))
    for ordinal, dst in design.input_edges:
        pad = fabric.input_pad(ordinal)
        edges.append((pad.position, floorplan.position_of(dst)))
    for src, ordinal in design.output_edges:
        pad = fabric.output_pad(ordinal)
        edges.append((floorplan.position_of(src), pad.position))
    return wirelength(edges)


class TestAnnealing:
    def test_preserves_legality_and_schedule(self, synth_design, fabric4):
        floorplan = greedy_place(synth_design, fabric4)
        before = dict(floorplan.context_of)
        anneal_placement(synth_design, floorplan, AnnealingConfig(moves_per_op=20))
        floorplan.validate()
        assert floorplan.context_of == before

    def test_does_not_worsen_wirelength_much(self, synth_design, fabric4):
        base = greedy_place(synth_design, fabric4)
        wl_before = total_wirelength(synth_design, base)
        annealed = greedy_place(synth_design, fabric4)
        anneal_placement(synth_design, annealed, AnnealingConfig(moves_per_op=60))
        wl_after = total_wirelength(synth_design, annealed)
        # SA ends cold: the result should be no worse than ~10% over the
        # constructive baseline and usually better.
        assert wl_after <= wl_before * 1.10

    def test_deterministic_under_seed(self, synth_design, fabric4):
        results = []
        for _ in range(2):
            floorplan = greedy_place(synth_design, fabric4)
            anneal_placement(
                synth_design, floorplan, AnnealingConfig(moves_per_op=25, seed=11)
            )
            results.append(dict(floorplan.pe_of))
        assert results[0] == results[1]

    def test_seed_changes_result(self, synth_design, fabric4):
        outcomes = []
        for seed in (1, 2):
            floorplan = greedy_place(synth_design, fabric4)
            anneal_placement(
                synth_design, floorplan, AnnealingConfig(moves_per_op=40, seed=seed)
            )
            outcomes.append(tuple(sorted(floorplan.pe_of.items())))
        # Different seeds explore different move sequences; identical
        # outputs would suggest the RNG is not actually used.
        assert outcomes[0] != outcomes[1]

    def test_single_op_context_untouched(self, fabric4):
        from repro.arch import OpKind, UnitKind
        from repro.hls import MappedDesign, OpInfo

        design = MappedDesign(name="single", num_contexts=1)
        design.ops[0] = OpInfo(0, OpKind.ADD, 32, 0, UnitKind.ALU, 0.87, 0.87)
        floorplan = greedy_place(design, fabric4)
        pe_before = floorplan.pe_of[0]
        anneal_placement(design, floorplan)
        assert floorplan.pe_of[0] == pe_before
