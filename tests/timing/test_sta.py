"""STA tests including the paper's Fig. 4 worked example."""

from __future__ import annotations

import pytest

from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.hls import MappedDesign, OpInfo
from repro.timing import (
    TimingPath,
    all_critical_paths,
    analyze,
    build_timing_graphs,
    critical_paths,
)


def make_design(num_ops, edges, num_contexts=1, contexts=None, delay=1.0):
    """Design with uniform op delay (easy arithmetic)."""
    design = MappedDesign(name="t", num_contexts=num_contexts)
    design.clock_period_ns = 100.0  # irrelevant to STA
    for op in range(num_ops):
        design.ops[op] = OpInfo(
            op, OpKind.ADD, 32, (contexts or {}).get(op, 0),
            UnitKind.ALU, delay, delay,
        )
    design.compute_edges = list(edges)
    return design


def unit_wire_fabric(rows=4, cols=4):
    """Fabric with unit wire delay 1.0 ns per grid step (Fig. 4 arithmetic)."""
    return Fabric(rows, cols, unit_wire_delay_ns=1.0)


class TestArrivalTimes:
    def test_chain_delay(self):
        design = make_design(3, [(0, 1), (1, 2)], delay=2.0)
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 1)
        fp.bind(0, 0, 0)  # (0,0)
        fp.bind(1, 0, 1)  # (0,1): wire 1
        fp.bind(2, 0, 5)  # (1,1): wire 1
        report = analyze(design, fp)
        # 3 PEs x 2ns + 2 wires x 1ns = 8
        assert report.cpd_ns == pytest.approx(8.0)

    def test_register_inputs_cost_nothing(self):
        design = make_design(
            2, [(0, 1)], num_contexts=2, contexts={0: 0, 1: 1}, delay=2.0
        )
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 1, 15)  # far away — but register read carries no delay
        report = analyze(design, fp)
        assert report.cpd_ns == pytest.approx(2.0)

    def test_cpd_is_max_over_contexts(self):
        design = make_design(
            3, [(0, 1)], num_contexts=2, contexts={0: 0, 1: 0, 2: 1}, delay=2.0
        )
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 3)  # wire 3: ctx0 delay = 2+3+2 = 7
        fp.bind(2, 1, 0)  # ctx1 delay = 2
        report = analyze(design, fp)
        assert report.per_context[0].cpd_ns == pytest.approx(7.0)
        assert report.per_context[1].cpd_ns == pytest.approx(2.0)
        assert report.cpd_ns == pytest.approx(7.0)

    def test_reconvergent_max(self):
        # diamond: 0 -> 1,2 -> 3 with asymmetric wire lengths
        design = make_design(4, [(0, 1), (0, 2), (1, 3), (2, 3)], delay=1.0)
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 1)
        fp.bind(0, 0, 0)   # (0,0)
        fp.bind(1, 0, 1)   # (0,1)
        fp.bind(2, 0, 12)  # (3,0) — wire 3 from op0
        fp.bind(3, 0, 5)   # (1,1)
        report = analyze(design, fp)
        # path 0-2-3: 1 + 3 + 1 + (|3-1|+|0-1|=3) + 1 = 9
        assert report.cpd_ns == pytest.approx(9.0)


class TestCriticalPathExtraction:
    def test_single_chain(self):
        design = make_design(3, [(0, 1), (1, 2)], delay=2.0)
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 1)
        for op, pe in ((0, 0), (1, 1), (2, 2)):
            fp.bind(op, 0, pe)
        paths = all_critical_paths(design, fp)
        assert len(paths) == 1
        assert paths[0].chain == (0, 1, 2)
        assert paths[0].delay_ns(design, fp) == pytest.approx(8.0)

    def test_multiple_tight_paths(self):
        design = make_design(4, [(0, 2), (1, 2), (2, 3)], delay=1.0)
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 1)
        fp.bind(0, 0, 0)  # (0,0)
        fp.bind(1, 0, 8)  # (2,0)
        fp.bind(2, 0, 4)  # (1,0): both producers 1 away -> two tight paths
        fp.bind(3, 0, 5)
        paths = all_critical_paths(design, fp)
        chains = {p.chain for p in paths}
        assert chains == {(0, 2, 3), (1, 2, 3)}

    def test_per_context_criticals_included(self):
        design = make_design(
            2, [], num_contexts=2, contexts={0: 0, 1: 1}, delay=2.0
        )
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 1, 0)
        paths = all_critical_paths(design, fp)
        assert {p.context for p in paths} == {0, 1}


class TestTimingPath:
    def test_wire_segments(self):
        path = TimingPath(context=0, chain=(3, 5, 7))
        segments = path.wire_segments()
        assert len(segments) == 2
        assert segments[0][0].ident == 3

    def test_single_op_path_has_no_wires(self):
        path = TimingPath(context=0, chain=(3,))
        assert path.wire_segments() == []

    def test_pe_delay_invariant_under_rebinding(self, fabric4):
        design = make_design(2, [(0, 1)], delay=2.5)
        fp = Floorplan(fabric4, 1)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 1)
        path = TimingPath(context=0, chain=(0, 1))
        before = path.pe_delay_ns(design)
        moved = fp.with_bindings({1: 15})
        assert path.pe_delay_ns(design) == before
        assert path.wire_length(moved) > path.wire_length(fp)


class TestFig4WorkedExample:
    """The paper's Fig. 4(b) arithmetic, verbatim.

    Normalized PE delay 2, unit wire delay 1, adjacent wire length 1.
    path1 (3 PEs, wires 1+1): delay = 2x3 + 1x1x2 = 8.
    path3 (6 PEs, 5 unit wires): delay = 2x6 + 1x1x5 = 17 (critical).
    Wire-length bound for path1: (17 - 2x3)/1 = 11, slack = 11 - 2 = 9.
    """

    def build(self):
        # PEs indexed row-major on 4x4; path1 = PE1->PE5->PE9 (column),
        # path3 = PE2->PE6->PE10->PE14->PE15->PE16 in Fig. 4's 1-based
        # numbering; we use 0-based equivalents.
        design = make_design(
            9,
            [(0, 1), (1, 2),                       # path1 chain
             (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)],  # path3 chain
            delay=2.0,
        )
        fabric = unit_wire_fabric()
        fp = Floorplan(fabric, 1)
        # path1 down column 0: (0,0) (1,0) (2,0)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 4)
        fp.bind(2, 0, 8)
        # path3 snake of 6 PEs with unit steps: (0,1)(1,1)(2,1)(3,1)(3,2)(3,3)
        for op, pe in zip(range(3, 9), (1, 5, 9, 13, 14, 15)):
            fp.bind(op, 0, pe)
        return design, fabric, fp

    def test_path_delays(self):
        design, fabric, fp = self.build()
        report = analyze(design, fp)
        assert report.cpd_ns == pytest.approx(17.0)
        path1 = TimingPath(context=0, chain=(0, 1, 2))
        assert path1.delay_ns(design, fp) == pytest.approx(8.0)

    def test_path1_wire_length_slack(self):
        design, fabric, fp = self.build()
        report = analyze(design, fp)
        path1 = TimingPath(context=0, chain=(0, 1, 2))
        bound = (report.cpd_ns - path1.pe_delay_ns(design)) / fabric.unit_wire_delay_ns
        assert bound == pytest.approx(11.0)
        slack = bound - path1.wire_length(fp)
        assert slack == pytest.approx(9.0)

    def test_critical_path_is_path3(self):
        design, fabric, fp = self.build()
        paths = all_critical_paths(design, fp)
        assert len(paths) == 1
        assert paths[0].chain == (3, 4, 5, 6, 7, 8)
