"""LinExpr / Variable algebra tests, including algebraic property tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.milp import LinExpr, Variable, VarType, linear_sum


def make_vars(n=3):
    return [Variable(f"v{i}") for i in range(n)]


class TestVariable:
    def test_binary_bounds_clamped(self):
        var = Variable("b", lb=-5, ub=9, vtype=VarType.BINARY)
        assert (var.lb, var.ub) == (0.0, 1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", lb=2, ub=1)

    def test_identity_hash_distinct_same_name(self):
        a, b = Variable("x"), Variable("x")
        assert not a.is_same(b)
        assert len({a, b}) == 2

    def test_negation(self):
        x = Variable("x")
        expr = -x
        assert expr.coefficient(x) == -1.0

    def test_ne_raises(self):
        x = Variable("x")
        with pytest.raises(ModelError):
            x != 3  # noqa: B015


class TestArithmetic:
    def test_add_merges_terms(self):
        x, y, _ = make_vars()
        expr = x + y + x
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 1.0

    def test_scalar_multiplication(self):
        x, *_ = make_vars()
        expr = 3 * x * 2
        assert expr.coefficient(x) == 6.0

    def test_subtraction_and_constants(self):
        x, y, _ = make_vars()
        expr = 2 * x - y + 5 - 3
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == -1.0
        assert expr.constant == 2.0

    def test_rsub(self):
        x, *_ = make_vars()
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.coefficient(x) == -1.0

    def test_division(self):
        x, *_ = make_vars()
        expr = (4 * x) / 2
        assert expr.coefficient(x) == 2.0

    def test_division_by_zero_rejected(self):
        x, *_ = make_vars()
        with pytest.raises(ModelError):
            (x + 1) / 0

    def test_division_by_expression_rejected(self):
        x, y, _ = make_vars()
        with pytest.raises(ModelError):
            (x + 1) / LinExpr.from_term(y)

    def test_product_of_variables_rejected(self):
        x, y, _ = make_vars()
        with pytest.raises(ModelError):
            LinExpr.from_term(x) * LinExpr.from_term(y)

    def test_product_with_constant_expr_ok(self):
        x, *_ = make_vars()
        expr = LinExpr.from_term(x) * LinExpr.constant_expr(4.0)
        assert expr.coefficient(x) == 4.0

    def test_sum_helper_matches_manual(self):
        x, y, z = make_vars()
        via_helper = linear_sum([x, 2 * y, z, 7])
        manual = x + 2 * y + z + 7
        assert via_helper.terms == manual.terms
        assert via_helper.constant == manual.constant

    def test_sum_rejects_strings(self):
        with pytest.raises(ModelError):
            linear_sum(["oops"])


class TestEvaluation:
    def test_evaluate(self):
        x, y, _ = make_vars()
        expr = 2 * x - 3 * y + 1
        assert expr.evaluate({x: 2.0, y: 1.0}) == pytest.approx(2.0)

    def test_evaluate_missing_variable(self):
        x, y, _ = make_vars()
        with pytest.raises(ModelError):
            (x + y).evaluate({x: 1.0})

    def test_is_constant(self):
        x, *_ = make_vars()
        assert LinExpr.constant_expr(5).is_constant()
        assert not (x + 1).is_constant()

    def test_copy_is_independent(self):
        x, *_ = make_vars()
        expr = x + 1
        clone = expr.copy()
        clone.terms[x] = 99.0
        assert expr.coefficient(x) == 1.0


coeffs = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


class TestAlgebraicProperties:
    @given(a=coeffs, b=coeffs, x_val=coeffs, y_val=coeffs)
    def test_linearity_of_evaluation(self, a, b, x_val, y_val):
        """eval(a*X + b*Y) == a*eval(X) + b*eval(Y)."""
        x, y = Variable("x"), Variable("y")
        expr = a * x + b * y
        assignment = {x: x_val, y: y_val}
        assert expr.evaluate(assignment) == pytest.approx(
            a * x_val + b * y_val, abs=1e-6, rel=1e-9
        )

    @given(values=st.lists(coeffs, min_size=0, max_size=20))
    def test_sum_equals_fold(self, values):
        """linear_sum of scaled copies of one var == sum of coefficients."""
        x = Variable("x")
        expr = linear_sum(c * x for c in values)
        assert expr.coefficient(x) == pytest.approx(sum(values), abs=1e-7)

    @given(a=coeffs, b=coeffs)
    def test_distributivity_of_scaling(self, a, b):
        x, y = Variable("x"), Variable("y")
        left = 2.0 * (a * x + b * y)
        assert left.coefficient(x) == pytest.approx(2 * a)
        assert left.coefficient(y) == pytest.approx(2 * b)

    @given(c=coeffs)
    def test_neg_is_scale_minus_one(self, c):
        x = Variable("x")
        expr = -(c * x + 1)
        assert expr.coefficient(x) == pytest.approx(-c)
        assert expr.constant == pytest.approx(-1.0)


class TestComparisonBuilders:
    def test_le_builds_constraint(self):
        from repro.milp import Constraint, Sense

        x, *_ = make_vars()
        constraint = x + 1 <= 3
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE
        assert constraint.rhs == pytest.approx(2.0)

    def test_ge_and_eq(self):
        from repro.milp import Sense

        x, *_ = make_vars()
        assert (x >= 1).sense is Sense.GE
        assert (LinExpr.from_term(x) == 1).sense is Sense.EQ

    def test_repr_mentions_terms(self):
        x = Variable("alpha")
        assert "alpha" in repr(x + 1)
        assert not math.isnan((x + 1).constant)
