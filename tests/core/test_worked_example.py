"""The paper's Fig. 4 scenario driven through the *re-mapper* (experiment
F4 in DESIGN.md).

tests/timing/test_sta.py checks the STA arithmetic of the same scene;
here the scene goes through constraint generation and the MILP, verifying
that the solver respects exactly the bounds the paper derives:

* path3 (the critical path) is frozen;
* path1's ops may move anywhere satisfying wire length <= 11;
* with a stress budget of one op per PE, path1's stressed PEs are
  relieved without touching the CPD — the transformation of Fig. 4(c).
"""

from __future__ import annotations

import pytest

from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    solve_remap,
)
from repro.hls import MappedDesign, OpInfo
from repro.timing import TimingPath, all_critical_paths, analyze, filter_paths


@pytest.fixture(scope="module")
def scene():
    design = MappedDesign(name="fig4", num_contexts=1)
    for op in range(9):
        design.ops[op] = OpInfo(op, OpKind.ADD, 32, 0, UnitKind.ALU, 2.0, 2.0)
    design.compute_edges = [
        (0, 1), (1, 2),
        (3, 4), (4, 5), (5, 6), (6, 7), (7, 8),
    ]
    fabric = Fabric(4, 4, unit_wire_delay_ns=1.0)
    floorplan = Floorplan(fabric, 1)
    for op, pe in zip(range(3), (0, 4, 8)):
        floorplan.bind(op, 0, pe)
    for op, pe in zip(range(3, 9), (1, 5, 9, 13, 14, 15)):
        floorplan.bind(op, 0, pe)
    return design, fabric, floorplan


@pytest.fixture(scope="module")
def remapped(scene):
    design, fabric, floorplan = scene
    report = analyze(design, floorplan)
    critical_ops = {
        op for p in all_critical_paths(design, floorplan) for op in p.chain
    }
    frozen = FrozenPlan(
        positions={op: floorplan.pe_of[op] for op in critical_ops},
        orientation_of_context={0: 0},
    )
    monitored = filter_paths(design, floorplan, retention=0.99).non_critical
    candidates = default_candidates(design, floorplan, frozen, fabric, None)
    model, variables, _ = build_remap_model(
        design, fabric, frozen, candidates, monitored,
        cpd_ns=report.cpd_ns, st_target_ns=2.0,
    )
    outcome = solve_remap(model, variables, RemapConfig(time_limit_s=30))
    assert outcome.feasible
    return design, fabric, floorplan, frozen, outcome.floorplan(floorplan, frozen)


class TestFig4Remap:
    def test_critical_path_untouched(self, remapped):
        design, fabric, original, frozen, new = remapped
        for op in range(3, 9):
            assert new.pe_of[op] == original.pe_of[op]

    def test_cpd_exactly_preserved(self, remapped):
        design, fabric, original, frozen, new = remapped
        assert analyze(design, new).cpd_ns == pytest.approx(17.0)

    def test_path1_within_wire_bound(self, remapped):
        design, fabric, original, frozen, new = remapped
        path1 = TimingPath(context=0, chain=(0, 1, 2))
        assert path1.wire_length(new) <= 11.0 + 1e-9

    def test_stress_budget_one_op_per_pe(self, remapped):
        from repro.aging import compute_stress_map

        design, fabric, original, frozen, new = remapped
        stress = compute_stress_map(design, new)
        assert stress.max_accumulated_ns == pytest.approx(2.0)

    def test_stressed_pes_relieved(self, remapped):
        """Fig. 4(c): the ops of path1 move off the doubly-used column."""
        design, fabric, original, frozen, new = remapped
        new.validate()
        # Every PE hosts at most one op now (budget 2.0 = one op).
        assert len(set(new.pe_of.values())) == 9
