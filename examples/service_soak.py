#!/usr/bin/env python
"""Service soak driver: concurrent mixed-tenant bursts under injected faults.

Boots a real ``repro serve`` subprocess (faults armed via ``REPRO_FAULTS``
unless already set in the environment), fires N concurrent requests from
multiple tenants with heavy duplication, then checks the service kept its
promises:

* zero lost jobs — every accepted request reaches ``done``;
* nonzero cache hits — duplicates are served from the artifact cache;
* zero certification failures — nothing corrupt was ever served;
* clean SIGTERM drain — the process exits 0 with the journal settled;
* (``--verify``) every artifact bit-identical to the one-shot pipeline.

Exits nonzero on any violation.  CI runs this as the service soak gate::

    python examples/service_soak.py --requests 50 --verify

Usage::

    python examples/service_soak.py [--requests N] [--state-dir DIR]
                                    [--verify] [--keep]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro.service import FloorplanRequest, ServiceClient, comparable_view
from repro.service.cache import ArtifactCache
from repro.service.worker import run_request

DEFAULT_FAULTS = "service_worker_crash@1,service_cache_corrupt@1"

UNIQUE = [
    {"kernel": "fir8", "fabric": "4x4", "mode": "rotate", "time_limit_s": 5.0},
    {"kernel": "fir8", "fabric": "4x4", "mode": "freeze", "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "mode": "rotate",
     "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "mode": "freeze",
     "time_limit_s": 5.0},
]
TENANTS = ("team-a", "team-b", "team-c")


def boot(state_dir: pathlib.Path) -> subprocess.Popen:
    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(root / "src")
    env.setdefault("REPRO_FAULTS", DEFAULT_FAULTS)
    print(f"booting repro serve (REPRO_FAULTS={env['REPRO_FAULTS']!r})")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--port", "0",
            "--concurrency", "3", "--drain-grace", "120",
            "--max-queue", "128", "--tenant-queue", "64",
        ],
        env=env, cwd=str(root),
    )


def wait_ready(state_dir: pathlib.Path, pid: int, timeout_s=30) -> ServiceClient:
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            document = json.loads(endpoint.read_text())
            if document.get("pid") == pid:
                client = ServiceClient(document["host"], document["port"])
                if client.ready():
                    return client
        except Exception:
            pass
        time.sleep(0.2)
    raise SystemExit("service never became ready")


def one_request(client: ServiceClient, request: dict) -> dict:
    view = client.submit_retry(request, attempts=60)
    return client.wait_job(view["job_id"], timeout_s=600)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--state-dir", default=None)
    parser.add_argument(
        "--verify", action="store_true",
        help="also re-run each unique request one-shot and compare",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the state directory for post-mortems",
    )
    args = parser.parse_args(argv)

    scratch = None
    if args.state_dir:
        state_dir = pathlib.Path(args.state_dir)
    else:
        scratch = tempfile.TemporaryDirectory(prefix="repro-soak-")
        state_dir = pathlib.Path(scratch.name) / "state"

    failures: list[str] = []
    proc = boot(state_dir)
    try:
        client = wait_ready(state_dir, proc.pid)
        requests = [
            dict(UNIQUE[i % len(UNIQUE)], tenant=TENANTS[i % len(TENANTS)])
            for i in range(args.requests)
        ]
        started = time.monotonic()
        with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
            finals = list(pool.map(
                lambda request: one_request(client, request), requests
            ))
        wall = time.monotonic() - started

        lost = [f["job_id"] for f in finals if f["status"] != "done"]
        if lost:
            failures.append(f"lost jobs (not done): {lost}")
        metrics = client.metrics()["metrics"]

        def value(name: str) -> float:
            return metrics.get(name, {}).get("value", 0)

        hits = value("service.cache_hits")
        if hits <= 0:
            failures.append("expected nonzero cache hits under duplication")
        cert_failures = value("service.cache_certify_failures")
        if cert_failures:
            failures.append(f"certification failures: {cert_failures:.0f}")
        print(
            f"{len(finals)} requests in {wall:.1f}s: "
            f"hits={hits:.0f} corrupt={value('service.cache_corrupt'):.0f} "
            f"crashes={value('service.worker_crashes'):.0f} "
            f"retries={value('service.job_retries'):.0f} "
            f"shed={value('service.shed'):.0f} "
            f"coalesced={value('service.jobs_coalesced'):.0f}"
        )

        # Clean SIGTERM drain.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=180)
        if code != 0:
            failures.append(f"serve exited {code} on SIGTERM drain")

        if args.verify:
            cache = ArtifactCache(state_dir / "cache", certify=False)
            for request_dict in UNIQUE:
                request = FloorplanRequest.from_dict(request_dict)
                served = cache.fetch(request.cache_key())
                if served is None:
                    failures.append(
                        f"artifact missing for {request.kernel}/{request.mode}"
                    )
                    continue
                expected = comparable_view(run_request(request))
                if comparable_view(served) != expected:
                    failures.append(
                        f"served artifact differs from one-shot for "
                        f"{request.kernel}/{request.mode}"
                    )
            print(f"verified {len(UNIQUE)} unique artifacts against "
                  "the one-shot pipeline")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if scratch is not None and not args.keep:
            scratch.cleanup()

    if failures:
        for failure in failures:
            print(f"SOAK FAILURE: {failure}", file=sys.stderr)
        return 1
    print("soak passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
