"""Crash-isolated, resumable experiment sweeps (JSONL checkpoints).

A Table I sweep at paper scale runs for hours; losing the whole run to one
crashing benchmark (or a ^C at entry 25 of 27) is the single biggest
robustness hole in the experiment drivers.  :class:`SweepCheckpoint`
appends one JSON record per finished entry — success or permanent failure
— to a sidecar file, flushed and fsynced per record so a killed process
loses at most the entry in flight.

``run_table1``/``run_fig5`` consume it: ``--resume`` skips entries whose
latest record is a success (failed entries are retried), and because JSON
floats round-trip exactly, a resumed sweep reproduces byte-identical
tables.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator

from repro.errors import ReproError
from repro.obs.logs import get_logger

_log = get_logger("resilience.checkpoint")


class CheckpointError(ReproError):
    """A sweep checkpoint file is unreadable or malformed."""


class SweepCheckpoint:
    """Append-only JSONL journal of per-entry sweep outcomes.

    Records are free-form dicts carrying at least ``entry`` (benchmark
    name) and ``status`` (``"ok"`` or ``"failed"``).  The latest record
    per entry wins, so a retried entry simply appends a newer record.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Start a fresh sweep: truncate any previous journal."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync per line)."""
        if "entry" not in record or "status" not in record:
            raise CheckpointError(
                f"checkpoint record needs 'entry' and 'status': {record!r}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self, tolerate_torn_tail: bool = True) -> Iterator[dict]:
        """Yield every record in journal order (missing file = empty).

        A malformed *final* line is skipped with a warning when
        ``tolerate_torn_tail`` is true: a process killed mid-``append``
        leaves at most one truncated line at the end of the journal, and
        that must not make the whole sweep unresumable (same contract as
        :func:`repro.obs.trace.read_trace`).  A torn line anywhere else
        means real corruption and still raises :class:`CheckpointError`.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = [
                (lineno, line.strip())
                for lineno, line in enumerate(handle, start=1)
                if line.strip()
            ]
        for position, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "entry" not in record:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: not a sweep record: {line!r}"
                    )
            except (json.JSONDecodeError, CheckpointError) as exc:
                if not tolerate_torn_tail or position != len(lines) - 1:
                    if isinstance(exc, CheckpointError):
                        raise
                    raise CheckpointError(
                        f"{self.path}:{lineno}: not valid JSON: {exc}"
                    ) from exc
                _log.warning(
                    "%s: line %d is torn (crash-truncated write?); skipped",
                    self.path, lineno,
                )
                return
            yield record

    def latest(self) -> dict[str, dict]:
        """Latest record per entry name (later lines supersede earlier)."""
        result: dict[str, dict] = {}
        for record in self.records():
            result[record["entry"]] = record
        return result

    def completed(self) -> dict[str, dict]:
        """Entries whose latest record is a success."""
        return {
            name: record
            for name, record in self.latest().items()
            if record.get("status") == "ok"
        }
