"""Operation-kind characterisation tests (paper Section III constants)."""

from __future__ import annotations

import pytest

from repro.arch import (
    ALU_KINDS,
    DMU_KINDS,
    OpKind,
    PSEUDO_KINDS,
    UnitKind,
    arity_of,
    is_compute,
    op_delay_ns,
    profile,
    stress_rate,
    unit_of,
    width_scale,
)
from repro.errors import ArchitectureError
from repro.units import ALU_DELAY_NS, CLOCK_PERIOD_NS, DMU_DELAY_NS


class TestUnits:
    def test_paper_delays(self):
        """The paper characterises ALU = 0.87 ns, DMU = 3.14 ns."""
        assert op_delay_ns(OpKind.ADD) == pytest.approx(0.87)
        assert op_delay_ns(OpKind.MUL) == pytest.approx(3.14)

    def test_stress_rate_is_delay_over_clock(self):
        """Section III: SR = unit delay / clock period."""
        assert stress_rate(OpKind.ADD) == pytest.approx(
            ALU_DELAY_NS / CLOCK_PERIOD_NS
        )
        assert stress_rate(OpKind.MUL) == pytest.approx(
            DMU_DELAY_NS / CLOCK_PERIOD_NS
        )

    def test_every_kind_has_a_unit(self):
        for kind in OpKind:
            assert unit_of(kind) in UnitKind

    def test_partition_is_complete_and_disjoint(self):
        all_kinds = set(ALU_KINDS) | set(DMU_KINDS) | set(PSEUDO_KINDS)
        assert all_kinds == set(OpKind)
        assert not (set(ALU_KINDS) & set(DMU_KINDS))

    def test_pseudo_ops_do_not_compute(self):
        for kind in PSEUDO_KINDS:
            assert not is_compute(kind)
        assert is_compute(OpKind.ADD)
        assert is_compute(OpKind.SELECT)


class TestWidthScaling:
    def test_reference_width_is_identity(self):
        assert width_scale(32) == pytest.approx(1.0)

    def test_narrow_is_faster(self):
        assert width_scale(8) < width_scale(16) < width_scale(32)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ArchitectureError):
            width_scale(24)

    def test_delay_scales_with_width(self):
        assert op_delay_ns(OpKind.MUL, 8) < op_delay_ns(OpKind.MUL, 32)

    def test_stress_rate_below_one(self):
        """No op may stress a PE for more than the clock period."""
        for kind in list(ALU_KINDS) + list(DMU_KINDS):
            for width in (8, 16, 32):
                assert 0 < stress_rate(kind, width) < 1.0


class TestProfileAndArity:
    def test_profile_consistency(self):
        p = profile(OpKind.XOR, 16)
        assert p.unit is UnitKind.ALU
        assert p.delay_ns == pytest.approx(op_delay_ns(OpKind.XOR, 16))
        assert p.stress_rate == pytest.approx(p.delay_ns / CLOCK_PERIOD_NS)

    def test_pseudo_profile_is_zero(self):
        p = profile(OpKind.INPUT)
        assert p.delay_ns == 0.0
        assert p.stress_rate == 0.0

    def test_arity_defaults_to_binary(self):
        assert arity_of(OpKind.ADD) == 2
        assert arity_of(OpKind.NEG) == 1
        assert arity_of(OpKind.SELECT) == 3
        assert arity_of(OpKind.INPUT) == 0
