"""Offline analysis of JSONL traces (``repro trace summarize``).

A trace is re-read as a list of dict records (one per line); the summary
aggregates span records per path into wall-time/count rows, reports the
total wall time (sum of root spans — spans with ``parent == null``), and
carries any ``metric`` lines through for display.

Crash-truncated traces are expected input: a killed sweep leaves a torn
final line behind, so :func:`read_trace` skips (and warns about) a
malformed *last* line instead of raising — only corruption before the
tail is an error.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ReproError
from repro.obs.logs import get_logger
from repro.obs.spans import PATH_SEP

_log = get_logger("obs.trace")


class TraceError(ReproError):
    """A trace file line is not a valid observability record."""


#: Keys every trace record must carry (the JSONL contract).
REQUIRED_KEYS = ("type", "name", "duration_s", "parent")

#: Event names that signal degraded execution (resilience ladder, budget
#: expiry, fault injection, sweep retries).  ``trace summarize`` lists
#: matching events in a dedicated section so a degraded run is visible at
#: a glance.
DEGRADATION_EVENTS = frozenset(
    {
        "flow.fallback",
        "phase2.degraded",
        "algorithm1.fallback",
        "algorithm1.degraded",
        "deadline.expired",
        "fault.injected",
        "anneal.deadline_stop",
        "anneal.nan_abort",
        "sweep.retry",
        "sweep.entry_failed",
        "sweep.worker_crash",
        "sweep.entry_timeout",
        "sweep.quarantined",
        "certification.failed",
        "certification.cold_rebuild",
        "portfolio.lane_rejected",
        "portfolio.breaker",
    }
)

#: Leaf span names of the flow's *evaluation* stages — the hosts of the
#: vectorized kernels (``repro.kernels``).  ``trace summarize`` and
#: ``repro explain`` aggregate these across the span tree (a stage may
#: appear under several parents: phase1/phase2 evaluate, algorithm1
#: iterations) into one per-stage breakdown; ``bench compare
#: --gate-stages`` gates regressions on the same totals.  Order is the
#: display order.
EVALUATION_STAGES = (
    "evaluate",
    "sta",
    "sta_verify",
    "critical_paths",
    "path_filter",
    "stress",
    "thermal",
    "mttf",
    "certify",
)

#: Per-entry sweep verdicts, worst first.  An entry's verdict is the
#: highest-ranked signal seen for it anywhere in the trace: a clean
#: ``table1_entry`` span is ``ok``; retry/crash/timeout events upgrade it
#: to ``retried``; exhaustion, certification failure, and quarantine win
#: over everything before them.
_EVALUATION_STAGE_SET = frozenset(EVALUATION_STAGES)

VERDICT_RANK = {
    "ok": 0,
    "retried": 1,
    "cert-failed": 2,
    "failed": 3,
    "quarantined": 4,
}

#: Event name -> the sweep verdict it implies for its entry/benchmark.
_EVENT_VERDICTS = {
    "sweep.retry": "retried",
    "sweep.worker_crash": "retried",
    "sweep.entry_timeout": "retried",
    "sweep.entry_failed": "failed",
    "sweep.quarantined": "quarantined",
    "certification.failed": "cert-failed",
}


@dataclass
class StageRow:
    """Aggregated statistics of one span path."""

    path: str
    count: int = 0
    total_s: float = 0.0

    @property
    def depth(self) -> int:
        return self.path.count(PATH_SEP)

    @property
    def name(self) -> str:
        return self.path.split(PATH_SEP)[-1]


@dataclass
class TraceSummary:
    """Everything ``summarize_trace`` extracted from one file."""

    stages: list[StageRow] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metrics: dict[str, dict] = field(default_factory=dict)
    #: Events whose name is in :data:`DEGRADATION_EVENTS`, in trace order.
    degradations: list[dict] = field(default_factory=list)
    #: ``solver`` span records, in trace order — the raw material of the
    #: per-solve convergence table (attrs carry ``SolveStats.span_attrs``).
    solves: list[dict] = field(default_factory=list)
    #: ``algorithm1.stats`` event attrs, one dict per Algorithm 1 run.
    alg1_runs: list[dict] = field(default_factory=list)
    #: ``algorithm1.explain`` event attrs — one "why was this iteration
    #: rejected / why did the run end" record per emission, in trace order.
    explains: list[dict] = field(default_factory=list)
    #: ``portfolio.race`` event attrs — one record per raced solve
    #: (winner lane, per-lane verdicts/timings), in trace order.
    races: list[dict] = field(default_factory=list)
    #: Per-sweep-entry verdict (see :data:`VERDICT_RANK`), in the order
    #: entries first appear in the trace.
    sweep_entries: dict[str, str] = field(default_factory=dict)
    #: Sum of root-span durations = the trace's total wall time.
    total_s: float = 0.0
    records: int = 0

    def stage_table(self) -> list[list[object]]:
        """Rows for :func:`repro.report.tables.format_table`."""
        rows: list[list[object]] = []
        for stage in self.stages:
            label = "  " * stage.depth + stage.name
            share = 100.0 * stage.total_s / self.total_s if self.total_s else 0.0
            rows.append([label, stage.count, round(stage.total_s, 3), round(share, 1)])
        return rows

    def evaluation_stages(self) -> list[StageRow]:
        """Evaluation-stage totals aggregated across the span tree.

        One row per :data:`EVALUATION_STAGES` leaf name that occurs in
        the trace (in canonical order), summing every path ending in that
        name — e.g. ``flow > phase1 > evaluate > stress`` and
        ``flow > phase2 > evaluate > stress`` fold into one ``stress``
        row.  Empty when the trace has no evaluation spans.
        """
        totals: dict[str, StageRow] = {}
        for row in self.stages:
            name = row.name
            if name in _EVALUATION_STAGE_SET:
                agg = totals.get(name)
                if agg is None:
                    agg = totals[name] = StageRow(path=name)
                agg.count += row.count
                agg.total_s += row.total_s
        return [totals[name] for name in EVALUATION_STAGES if name in totals]

    def evaluation_table(self) -> list[list[object]]:
        """``[stage, count, wall_s, share_%]`` rows of the evaluation stages."""
        rows: list[list[object]] = []
        for row in self.evaluation_stages():
            share = 100.0 * row.total_s / self.total_s if self.total_s else 0.0
            rows.append(
                [row.path, row.count, round(row.total_s, 3), round(share, 1)]
            )
        return rows

    def kernel_metrics(self) -> dict[str, dict]:
        """The ``kernels.*`` metric records (timers + lowering counters)."""
        return {
            name: data
            for name, data in sorted(self.metrics.items())
            if name.startswith("kernels.")
        }

    def to_dict(self) -> dict:
        """JSON-safe form of the whole summary (``trace summarize --json``)."""
        return {
            "schema": 1,
            "kind": "trace_summary",
            "records": self.records,
            "total_s": round(self.total_s, 6),
            "evaluation_stages": {
                row.path: {"count": row.count, "total_s": round(row.total_s, 6)}
                for row in self.evaluation_stages()
            },
            "stages": [
                {
                    "path": row.path,
                    "count": row.count,
                    "total_s": round(row.total_s, 6),
                }
                for row in self.stages
            ],
            "metrics": self.metrics,
            "degradations": self.degradations,
            "solves": self.solves,
            "alg1_runs": self.alg1_runs,
            "explains": self.explains,
            "races": self.races,
            "sweep_entries": self.sweep_entries,
            "events": self.events,
        }

    def race_table(self) -> list[list[object]]:
        """Per-lane rows of every raced solve (``trace summarize``).

        One row per lane per race: model, winning lane, this lane, its
        verdict, start/elapsed times and (for cancelled losers) when the
        race cancelled it — the audit trail of portfolio decisions.
        """
        rows: list[list[object]] = []
        for race in self.races:
            for lane in race.get("lanes", []):
                started = lane.get("started_s")
                finished = lane.get("finished_s")
                elapsed: object = ""
                if started is not None and finished is not None:
                    elapsed = round(finished - started, 3)
                cancelled = lane.get("cancelled_at_s")
                rows.append(
                    [
                        race.get("model", ""),
                        race.get("winner", ""),
                        lane.get("lane", ""),
                        lane.get("verdict", ""),
                        "" if started is None else round(started, 3),
                        elapsed,
                        "" if cancelled is None else round(cancelled, 3),
                    ]
                )
        return rows

    def verdict_table(self) -> list[list[str]]:
        """Per-entry ``[entry, verdict]`` rows, worst verdicts first."""
        return [
            [entry, verdict]
            for entry, verdict in sorted(
                self.sweep_entries.items(),
                key=lambda item: (-VERDICT_RANK[item[1]], item[0]),
            )
        ]


def parse_trace_line(line: str, lineno: int = 0) -> dict:
    """Parse and validate one JSONL record."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"line {lineno}: not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise TraceError(f"line {lineno}: expected a JSON object")
    missing = [key for key in REQUIRED_KEYS if key not in record]
    if missing:
        raise TraceError(f"line {lineno}: record missing keys {missing}")
    return record


def read_trace(
    path: str | pathlib.Path, tolerate_torn_tail: bool = True
) -> list[dict]:
    """All records of a trace file, validated.

    A malformed *final* line is what a crash mid-write leaves behind (the
    exact artefact of a killed sweep), so by default it is skipped with a
    warning instead of raising; malformed lines anywhere else still raise
    :class:`TraceError`.  Pass ``tolerate_torn_tail=False`` to make any
    malformed line fatal.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [
                (lineno, line.strip())
                for lineno, line in enumerate(handle, start=1)
                if line.strip()
            ]
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    records = []
    for position, (lineno, line) in enumerate(lines):
        try:
            records.append(parse_trace_line(line, lineno))
        except TraceError:
            if not tolerate_torn_tail or position != len(lines) - 1:
                raise
            _log.warning(
                "%s: line %d is torn (crash-truncated write?); skipped",
                path, lineno,
            )
    return records


def _note_verdict(summary: TraceSummary, entry: object, verdict: str) -> None:
    """Upgrade ``entry``'s sweep verdict if ``verdict`` outranks it."""
    if not isinstance(entry, str) or not entry:
        return
    current = summary.sweep_entries.get(entry)
    if current is None or VERDICT_RANK[verdict] > VERDICT_RANK[current]:
        summary.sweep_entries[entry] = verdict


def summarize_records(records: Iterable[Mapping]) -> TraceSummary:
    """Aggregate records into per-stage rows + total wall time."""
    summary = TraceSummary()
    order: list[str] = []
    by_path: dict[str, StageRow] = {}
    for record in records:
        summary.records += 1
        kind = record.get("type")
        if kind == "span":
            path = record.get("path", record["name"])
            row = by_path.get(path)
            if row is None:
                row = by_path[path] = StageRow(path=path)
                order.append(path)
            row.count += 1
            row.total_s += float(record["duration_s"])
            if record["parent"] is None:
                summary.total_s += float(record["duration_s"])
            if record["name"] == "solver":
                summary.solves.append(dict(record))
            elif record["name"] == "table1_entry":
                attrs = record.get("attrs") or {}
                _note_verdict(summary, attrs.get("benchmark"), "ok")
        elif kind == "event":
            summary.events.append(dict(record))
            if record["name"] in DEGRADATION_EVENTS:
                summary.degradations.append(dict(record))
            elif record["name"] == "algorithm1.stats":
                summary.alg1_runs.append(dict(record.get("attrs", {})))
            elif record["name"] == "algorithm1.explain":
                summary.explains.append(dict(record.get("attrs", {})))
            elif record["name"] == "portfolio.race":
                summary.races.append(dict(record.get("attrs", {})))
            verdict = _EVENT_VERDICTS.get(record["name"])
            if verdict is not None:
                attrs = record.get("attrs") or {}
                _note_verdict(
                    summary,
                    attrs.get("entry", attrs.get("benchmark")),
                    verdict,
                )
        elif kind == "metric":
            summary.metrics[record["name"]] = {
                k: v for k, v in record.items() if k not in ("type", "name")
            }
    order.sort(key=lambda p: p.split(PATH_SEP))
    summary.stages = [by_path[path] for path in order]
    return summary


def summarize_trace(path: str | pathlib.Path) -> TraceSummary:
    """Read + aggregate one JSONL trace file."""
    return summarize_records(read_trace(path))
