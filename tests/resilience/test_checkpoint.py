"""Sweep checkpoints: durability, resume, retry, keep-going semantics."""

from __future__ import annotations

import pytest

import repro.report.experiments as experiments
from repro.errors import FlowError, SweepError
from repro.report.experiments import (
    ExperimentConfig,
    RETRY_SEED_STRIDE,
    run_table1,
)
from repro.report.paper import BenchmarkMeasurement
from repro.resilience import CheckpointError, SweepCheckpoint


class TestSweepCheckpoint:
    def test_missing_file_reads_empty(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "missing.jsonl")
        assert not cp.exists()
        assert list(cp.records()) == []
        assert cp.latest() == {}
        assert cp.completed() == {}

    def test_append_and_read_back(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        cp.append({"entry": "B1", "status": "ok", "freeze_increase": 1.5})
        cp.append({"entry": "B2", "status": "failed", "error": "boom"})
        records = list(cp.records())
        assert len(records) == 2
        assert records[0]["freeze_increase"] == 1.5
        assert cp.completed().keys() == {"B1"}

    def test_latest_record_wins(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        cp.append({"entry": "B1", "status": "failed", "error": "transient"})
        cp.append({"entry": "B1", "status": "ok", "freeze_increase": 2.0})
        assert cp.latest()["B1"]["status"] == "ok"
        assert cp.completed().keys() == {"B1"}

    def test_failed_entries_are_not_completed(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        cp.append({"entry": "B1", "status": "ok"})
        cp.append({"entry": "B1", "status": "failed", "error": "regressed"})
        assert cp.completed() == {}

    def test_reset_truncates(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        cp.append({"entry": "B1", "status": "ok"})
        cp.reset()
        assert cp.exists()
        assert list(cp.records()) == []

    def test_record_requires_entry_and_status(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        with pytest.raises(CheckpointError):
            cp.append({"entry": "B1"})
        with pytest.raises(CheckpointError):
            cp.append({"status": "ok"})

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text(
            '{"entry": "B1", "status": "ok"}\n'
            "{oops\n"
            '{"entry": "B2", "status": "ok"}\n'
        )
        with pytest.raises(CheckpointError, match="not valid JSON"):
            list(SweepCheckpoint(path).records())

    def test_torn_final_line_is_skipped_with_warning(self, tmp_path):
        """A kill mid-append leaves a torn last line; resume must not
        refuse the whole checkpoint over it (mirrors read_trace)."""
        import logging

        path = tmp_path / "cp.jsonl"
        path.write_text(
            '{"entry": "B1", "status": "ok"}\n'
            '{"entry": "B2", "status": "o'
        )
        captured: list[logging.LogRecord] = []

        class _Capture(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                captured.append(record)

        logger = logging.getLogger("repro.resilience.checkpoint")
        handler = _Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            records = list(SweepCheckpoint(path).records())
        finally:
            logger.removeHandler(handler)
        assert [r["entry"] for r in records] == ["B1"]
        assert any("torn" in r.getMessage() for r in captured)
        assert SweepCheckpoint(path).completed().keys() == {"B1"}

    def test_torn_tail_can_be_made_fatal(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text('{"entry": "B1", "status": "ok"}\n{oops\n')
        with pytest.raises(CheckpointError, match="not valid JSON"):
            list(SweepCheckpoint(path).records(tolerate_torn_tail=False))

    def test_non_record_final_json_is_skipped(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text('{"entry": "B1", "status": "ok"}\n[1, 2, 3]\n')
        records = list(SweepCheckpoint(path).records())
        assert [r["entry"] for r in records] == ["B1"]

    def test_non_record_middle_json_raises(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text('[1, 2, 3]\n{"entry": "B1", "status": "ok"}\n')
        with pytest.raises(CheckpointError, match="not a sweep record"):
            list(SweepCheckpoint(path).records())

    def test_floats_round_trip_exactly(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        value = 1.2345678901234567
        cp.append({"entry": "B1", "status": "ok", "freeze_increase": value})
        assert cp.latest()["B1"]["freeze_increase"] == value


class TestConcurrentAppend:
    """The flock guarantee: whole lines, never interleaved fragments."""

    @staticmethod
    def _hammer(path, writer: int, count: int) -> None:
        cp = SweepCheckpoint(path)
        for n in range(count):
            cp.append({
                "entry": f"w{writer}-{n}", "status": "ok",
                # Bulk makes a torn interleave overwhelmingly likely
                # if the lock were not held across the whole write.
                "pad": f"{writer}:{n}:" + "x" * 512,
            })

    def test_parallel_processes_never_tear_lines(self, tmp_path):
        import multiprocessing

        path = tmp_path / "contested.jsonl"
        writers, per_writer = 4, 25
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(target=self._hammer, args=(path, w, per_writer))
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        # Strict parse: no torn-tail tolerance — every line must be whole.
        records = list(
            SweepCheckpoint(path).records(tolerate_torn_tail=False)
        )
        assert len(records) == writers * per_writer
        names = {record["entry"] for record in records}
        assert names == {
            f"w{w}-{n}" for w in range(writers) for n in range(per_writer)
        }

    def test_append_holds_and_releases_lock(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        path = tmp_path / "cp.jsonl"
        cp = SweepCheckpoint(path)
        cp.append({"entry": "B1", "status": "ok"})
        # After append returns, the journal must be immediately lockable
        # by someone else (no leaked LOCK_EX).
        with open(path, "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def test_reset_is_atomic_and_lockfree_readers_see_empty(self, tmp_path):
        cp = SweepCheckpoint(tmp_path / "cp.jsonl")
        cp.append({"entry": "B1", "status": "ok"})
        cp.reset()
        assert cp.exists()
        assert list(cp.records()) == []
        # The atomic replace leaves no scratch files next to the journal.
        assert [p.name for p in tmp_path.iterdir()] == ["cp.jsonl"]


def _stub_measurement(entry, seed: int) -> BenchmarkMeasurement:
    """Deterministic fake measurement: value encodes (entry, seed)."""
    base = float(sum(ord(c) for c in entry.name))
    return BenchmarkMeasurement(
        entry=entry,
        freeze_increase=base + seed * 1e-6,
        rotate_increase=base / 2.0 + seed * 1e-6,
    )


def _table(measurements: list[BenchmarkMeasurement]) -> list[tuple]:
    return [
        (m.entry.name, m.freeze_increase, m.rotate_increase)
        for m in measurements
    ]


@pytest.fixture
def sweep_config(tmp_path):
    def make(**overrides) -> ExperimentConfig:
        defaults = dict(
            scale="quick",
            only=["B1", "B2", "B4"],
            checkpoint=str(tmp_path / "sweep.jsonl"),
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    return make


class TestRunTable1Checkpointing:
    def test_clean_sweep_checkpoints_every_entry(
        self, sweep_config, monkeypatch
    ):
        monkeypatch.setattr(
            experiments,
            "measure_benchmark",
            lambda entry, config, seed=None: _stub_measurement(
                entry, config.seed if seed is None else seed
            ),
        )
        config = sweep_config()
        measurements = run_table1(config, log=lambda *_: None)
        assert [m.entry.name for m in measurements] == ["B1", "B2", "B4"]
        completed = SweepCheckpoint(config.checkpoint).completed()
        assert completed.keys() == {"B1", "B2", "B4"}
        assert all(r["seed"] == 0 for r in completed.values())

    def test_resume_skips_completed_and_reproduces_table(
        self, sweep_config, monkeypatch
    ):
        calls: list[str] = []

        def tracking_stub(entry, config, seed=None):
            calls.append(entry.name)
            return _stub_measurement(
                entry, config.seed if seed is None else seed
            )

        monkeypatch.setattr(experiments, "measure_benchmark", tracking_stub)
        full = run_table1(sweep_config(), log=lambda *_: None)
        assert calls == ["B1", "B2", "B4"]

        # Simulate a crash after B1: keep only its checkpoint record.
        crashed = sweep_config()
        cp = SweepCheckpoint(crashed.checkpoint)
        b1_record = cp.latest()["B1"]
        cp.reset()
        cp.append(b1_record)

        calls.clear()
        resumed = run_table1(
            sweep_config(resume=True), log=lambda *_: None
        )
        assert calls == ["B2", "B4"]  # B1 restored, not re-measured
        assert _table(resumed) == _table(full)

    def test_resume_without_checkpoint_runs_everything(
        self, sweep_config, monkeypatch
    ):
        calls: list[str] = []

        def tracking_stub(entry, config, seed=None):
            calls.append(entry.name)
            return _stub_measurement(entry, seed or 0)

        monkeypatch.setattr(experiments, "measure_benchmark", tracking_stub)
        run_table1(sweep_config(resume=True), log=lambda *_: None)
        assert calls == ["B1", "B2", "B4"]

    def test_fresh_run_resets_stale_checkpoint(
        self, sweep_config, monkeypatch
    ):
        config = sweep_config()
        cp = SweepCheckpoint(config.checkpoint)
        cp.append({"entry": "B1", "status": "ok", "seed": 99,
                   "freeze_increase": 0.0, "rotate_increase": 0.0})
        monkeypatch.setattr(
            experiments,
            "measure_benchmark",
            lambda entry, config, seed=None: _stub_measurement(entry, 0),
        )
        run_table1(config, log=lambda *_: None)  # resume=False
        assert cp.latest()["B1"]["seed"] == 0  # stale record gone


class TestRetrySemantics:
    def test_transient_failure_retries_with_perturbed_seed(
        self, sweep_config, monkeypatch
    ):
        seeds: dict[str, list[int]] = {}

        def flaky_stub(entry, config, seed=None):
            seed = config.seed if seed is None else seed
            seeds.setdefault(entry.name, []).append(seed)
            if entry.name == "B2" and len(seeds["B2"]) == 1:
                raise FlowError("transient solver hiccup")
            return _stub_measurement(entry, seed)

        monkeypatch.setattr(experiments, "measure_benchmark", flaky_stub)
        config = sweep_config(retries=1)
        measurements = run_table1(config, log=lambda *_: None)
        assert [m.entry.name for m in measurements] == ["B1", "B2", "B4"]
        assert seeds["B2"] == [0, RETRY_SEED_STRIDE]
        record = SweepCheckpoint(config.checkpoint).completed()["B2"]
        assert record["seed"] == RETRY_SEED_STRIDE

    def test_permanent_failure_aborts_by_default(
        self, sweep_config, monkeypatch
    ):
        def broken_stub(entry, config, seed=None):
            if entry.name == "B2":
                raise FlowError("always broken")
            return _stub_measurement(entry, seed or 0)

        monkeypatch.setattr(experiments, "measure_benchmark", broken_stub)
        config = sweep_config(retries=1)
        with pytest.raises(SweepError, match="B2.*2 attempt"):
            run_table1(config, log=lambda *_: None)
        latest = SweepCheckpoint(config.checkpoint).latest()
        assert latest["B1"]["status"] == "ok"  # finished before the abort
        assert latest["B2"]["status"] == "failed"
        assert "always broken" in latest["B2"]["error"]

    def test_keep_going_records_failure_and_continues(
        self, sweep_config, monkeypatch
    ):
        def broken_stub(entry, config, seed=None):
            if entry.name == "B2":
                raise FlowError("always broken")
            return _stub_measurement(entry, seed or 0)

        monkeypatch.setattr(experiments, "measure_benchmark", broken_stub)
        lines: list[str] = []
        config = sweep_config(retries=0, keep_going=True)
        measurements = run_table1(config, log=lines.append)
        assert [m.entry.name for m in measurements] == ["B1", "B4"]
        assert any("failed permanently: B2" in line for line in lines)
        # A later --resume run retries the failed entry only.
        monkeypatch.setattr(
            experiments,
            "measure_benchmark",
            lambda entry, config, seed=None: _stub_measurement(entry, 0),
        )
        resumed = run_table1(
            sweep_config(resume=True, keep_going=True), log=lambda *_: None
        )
        assert [m.entry.name for m in resumed] == ["B1", "B2", "B4"]

    def test_all_entries_failing_tabulates_nothing(
        self, sweep_config, monkeypatch
    ):
        def broken_stub(entry, config, seed=None):
            raise FlowError("cluster outage")

        monkeypatch.setattr(experiments, "measure_benchmark", broken_stub)
        lines: list[str] = []
        measurements = run_table1(
            sweep_config(retries=0, keep_going=True), log=lines.append
        )
        assert measurements == []
        assert any("nothing to tabulate" in line for line in lines)
