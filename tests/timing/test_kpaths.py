"""Path-filter tests: enumeration completeness vs brute force."""

from __future__ import annotations

import itertools

import pytest

from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.hls import MappedDesign, OpInfo
from repro.timing import analyze, build_timing_graphs, filter_paths
from repro.timing.kpaths import enumerate_context_paths


def make_design(num_ops, edges, delay=1.0):
    design = MappedDesign(name="t", num_contexts=1)
    for op in range(num_ops):
        design.ops[op] = OpInfo(op, OpKind.ADD, 32, 0, UnitKind.ALU, delay, delay)
    design.compute_edges = list(edges)
    return design


def brute_force_paths(design, floorplan):
    """Every chain in the (single-context) DAG, with its delay."""
    succs = {}
    for src, dst in design.compute_edges:
        succs.setdefault(src, []).append(dst)

    def path_delay(chain):
        total = sum(design.ops[o].delay_ns for o in chain)
        for a, b in zip(chain, chain[1:]):
            pa = floorplan.position_of(a)
            pb = floorplan.position_of(b)
            dist = abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])
            total += floorplan.fabric.wire_delay(dist)
        return total

    paths = []
    def extend(chain):
        paths.append((tuple(chain), path_delay(chain)))
        for nxt in succs.get(chain[-1], []):
            extend(chain + [nxt])
    for op in design.ops:
        extend([op])
    return paths


@pytest.fixture
def diamond():
    design = make_design(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    fabric = Fabric(4, 4, unit_wire_delay_ns=1.0)
    fp = Floorplan(fabric, 1)
    for op, pe in ((0, 0), (1, 1), (2, 4), (3, 5)):
        fp.bind(op, 0, pe)
    return design, fp


class TestEnumeration:
    def test_matches_brute_force(self, diamond):
        design, fp = diamond
        report = analyze(design, fp)
        graphs = build_timing_graphs(design)
        threshold = 0.5 * report.cpd_ns
        found, truncated = enumerate_context_paths(
            graphs[0], fp, threshold, report.per_context[0].cpd_ns, 10_000
        )
        assert not truncated
        expected = {
            chain for chain, delay in brute_force_paths(design, fp)
            if delay >= threshold - 1e-9
        }
        assert {mp.path.chain for mp in found} == expected

    def test_delays_match_brute_force(self, diamond):
        design, fp = diamond
        report = analyze(design, fp)
        graphs = build_timing_graphs(design)
        found, _ = enumerate_context_paths(
            graphs[0], fp, 0.0, report.per_context[0].cpd_ns, 10_000
        )
        brute = dict(brute_force_paths(design, fp))
        for mp in found:
            assert mp.delay_ns == pytest.approx(brute[mp.path.chain])

    def test_critical_flag(self, diamond):
        design, fp = diamond
        result = filter_paths(design, fp, retention=1.0, max_paths=1000)
        critical = {mp.path.chain for mp in result.critical}
        report = analyze(design, fp)
        brute_critical = {
            chain for chain, delay in brute_force_paths(design, fp)
            if delay >= report.cpd_ns - 1e-9
        }
        assert critical == brute_critical


class TestFilter:
    def test_default_threshold_is_80_percent(self, diamond):
        design, fp = diamond
        result = filter_paths(design, fp)
        report = analyze(design, fp)
        assert result.threshold_ns == pytest.approx(0.8 * report.cpd_ns)

    def test_max_paths_cap_keeps_longest(self, diamond):
        design, fp = diamond
        full = filter_paths(design, fp, retention=1.0, max_paths=10_000)
        capped = filter_paths(design, fp, retention=1.0, max_paths=2)
        assert capped.truncated
        assert len(capped.paths) == 2
        longest = sorted(full.paths, key=lambda m: -m.delay_ns)[:2]
        assert {m.delay_ns for m in capped.paths} == {
            m.delay_ns for m in longest
        }

    def test_paths_sorted_descending(self, diamond):
        design, fp = diamond
        result = filter_paths(design, fp, retention=1.0)
        delays = [mp.delay_ns for mp in result.paths]
        assert delays == sorted(delays, reverse=True)

    def test_non_critical_partition(self, diamond):
        design, fp = diamond
        result = filter_paths(design, fp, retention=1.0)
        assert len(result.critical) + len(result.non_critical) == len(result.paths)

    def test_wide_fan_structure(self):
        """Many parallel 2-chains: filter retains exactly the long ones."""
        edges = [(i, i + 8) for i in range(8)]
        design = make_design(16, edges)
        fabric = Fabric(4, 4, unit_wire_delay_ns=1.0)
        fp = Floorplan(fabric, 1)
        for op in range(8):
            fp.bind(op, 0, op)
        # Half the consumers adjacent (short), half far (long).
        for i in range(4):
            fp.bind(8 + i, 0, 8 + i)
        for i in range(4, 8):
            fp.bind(8 + i, 0, 12 + (i - 4))
        result = filter_paths(design, fp, retention=0.2)
        # Only chains ending at the far consumers are within 20% of CPD.
        assert all(len(mp.path.chain) == 2 for mp in result.paths)

    def test_empty_context_tolerated(self):
        design = make_design(1, [])
        design.num_contexts = 2
        fabric = Fabric(2, 2)
        fp = Floorplan(fabric, 2)
        fp.bind(0, 0, 0)
        result = filter_paths(design, fp)
        assert len(result.paths) == 1
