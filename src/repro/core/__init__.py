"""The paper's core contribution: MILP-based aging-aware re-mapping.

Step 1 (ST_target lower bound), Step 2.1 (critical-path freeze/rotation),
Step 2.2 (path-delay constraints), Step 2.3 (two-step LP->ILP solve with
Delta relaxation — Algorithm 1), and the end-to-end Phase 1 + Phase 2 flow.
"""

from repro.core.algorithm1 import (
    Algorithm1Config,
    RemapResult,
    run_algorithm1,
)
from repro.core.constraints import (
    RemapVariables,
    add_assignment_variables,
    add_exclusivity_constraints,
    add_path_constraints,
    add_stress_constraints,
    build_coordinates,
    collect_endpoints,
)
from repro.core.multiconfig import (
    RotationSet,
    build_rotation_set,
    combined_stress_map,
)
from repro.core.flow import (
    AgingAwareFlow,
    FloorplanEvaluation,
    FlowConfig,
    FlowResult,
    run_flow,
)
from repro.core.remap import (
    RemapConfig,
    RemapOutcome,
    WarmStart,
    build_remap_model,
    default_candidates,
    frozen_stress_by_pe,
    restamp_remap_model,
    solve_remap,
    solve_remap_sequential,
)
from repro.core.rotation import (
    NUM_ORIENTATIONS,
    FrozenPlan,
    apply_orientation,
    assign_orientations,
    freeze_plan,
    rotate_plan,
)
from repro.core.targets import (
    StressTargetResult,
    default_delta_ns,
    stress_target_lower_bound,
)

__all__ = [
    "AgingAwareFlow",
    "Algorithm1Config",
    "FloorplanEvaluation",
    "FlowConfig",
    "FlowResult",
    "FrozenPlan",
    "NUM_ORIENTATIONS",
    "RemapConfig",
    "RemapOutcome",
    "RemapResult",
    "RemapVariables",
    "RotationSet",
    "StressTargetResult",
    "WarmStart",
    "add_assignment_variables",
    "add_exclusivity_constraints",
    "add_path_constraints",
    "add_stress_constraints",
    "apply_orientation",
    "assign_orientations",
    "build_coordinates",
    "build_remap_model",
    "build_rotation_set",
    "collect_endpoints",
    "combined_stress_map",
    "default_candidates",
    "default_delta_ns",
    "freeze_plan",
    "frozen_stress_by_pe",
    "restamp_remap_model",
    "rotate_plan",
    "run_algorithm1",
    "run_flow",
    "solve_remap",
    "solve_remap_sequential",
    "stress_target_lower_bound",
]
