"""Solver backend tests: HiGHS, pure-Python branch & bound, cross-checks.

The branch-and-bound backend doubles as an executable specification: a
hypothesis test generates random small MILPs and requires both backends to
agree on feasibility and optimal objective value.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.milp import (
    BranchBoundBackend,
    Model,
    ScipyBackend,
    SolveStatus,
    linear_sum,
)


def knapsack_model():
    """0/1 knapsack: max 10x+6y+4z s.t. x+y+z<=2 -> optimum 16."""
    model = Model("knapsack")
    x, y, z = (model.add_binary(n) for n in "xyz")
    model.add_constraint(linear_sum([x, y, z]) <= 2)
    model.set_objective(10 * x + 6 * y + 4 * z, minimize=False)
    return model, (x, y, z)


class TestScipyBackend:
    def test_knapsack_optimum(self):
        model, (x, y, z) = knapsack_model()
        solution = model.solve(ScipyBackend())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(16.0)
        assert solution.rounded(x) == 1 and solution.rounded(y) == 1

    def test_infeasible_detected(self):
        model = Model("inf")
        x = model.add_binary("x")
        model.add_constraint(x >= 1)
        model.add_constraint(x <= 0)
        assert model.solve(ScipyBackend()).status is SolveStatus.INFEASIBLE

    def test_unbounded_detected(self):
        model = Model("unb")
        x = model.add_continuous("x", 0, math.inf)
        model.set_objective(x, minimize=False)
        status = model.solve(ScipyBackend()).status
        assert status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_pure_lp(self):
        model = Model("lp")
        x = model.add_continuous("x", 0, 4)
        y = model.add_continuous("y", 0, 4)
        model.add_constraint(x + y >= 3)
        model.set_objective(2 * x + y)
        solution = model.solve(ScipyBackend())
        assert solution.objective == pytest.approx(3.0)
        assert solution[y] == pytest.approx(3.0)

    def test_mixed_integer_continuous(self):
        model = Model("mix")
        n = model.add_var("n", 0, 10, vtype=__import__("repro.milp", fromlist=["VarType"]).VarType.INTEGER)
        c = model.add_continuous("c", 0, 10)
        model.add_constraint(n + c >= 2.5)
        model.set_objective(n + c)
        solution = model.solve(ScipyBackend())
        assert solution.objective == pytest.approx(2.5)

    def test_feasibility_model_reports_solution(self):
        model = Model("feas")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y == 1)
        solution = model.solve(ScipyBackend())
        assert solution.status.has_solution
        assert solution.rounded(x) + solution.rounded(y) == 1


class TestBranchBound:
    def test_knapsack_optimum(self):
        model, _ = knapsack_model()
        backend = BranchBoundBackend()
        solution = model.solve(backend)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(16.0)
        assert solution.stats.nodes >= 1

    def test_infeasible(self):
        model = Model("inf")
        x = model.add_binary("x")
        model.add_constraint(2 * x == 1)  # impossible for binary x
        assert model.solve(BranchBoundBackend()).status is SolveStatus.INFEASIBLE

    def test_node_limit_reported(self):
        model, _ = knapsack_model()
        solution = model.solve(BranchBoundBackend(max_nodes=1))
        # Either it got lucky with the first relaxation or reports a limit.
        assert solution.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.ERROR,
        )

    def test_integer_snapping(self):
        model = Model("snap")
        x = model.add_binary("x")
        model.add_constraint(x >= 0.4)  # LP gives 0.4; ILP must give 1
        solution = model.solve(BranchBoundBackend())
        assert solution.rounded(x) == 1


@st.composite
def random_milp(draw):
    """A small random MILP with bounded coefficients and 2-4 binaries."""
    num_vars = draw(st.integers(2, 4))
    num_cons = draw(st.integers(1, 4))
    coeff = st.integers(-4, 4)
    model = Model("rand")
    variables = [model.add_binary(f"x{i}") for i in range(num_vars)]
    for _ in range(num_cons):
        weights = [draw(coeff) for _ in variables]
        rhs = draw(st.integers(-3, 6))
        model.add_constraint(
            linear_sum(w * v for w, v in zip(weights, variables)) <= rhs
        )
    objective = [draw(coeff) for _ in variables]
    model.set_objective(
        linear_sum(w * v for w, v in zip(objective, variables))
    )
    return model, variables, objective


def brute_force_optimum(variables, constraints, objective_weights):
    """Exhaustive 0/1 enumeration."""
    best = None
    n = len(variables)
    for mask in range(1 << n):
        assignment = {v: float((mask >> i) & 1) for i, v in enumerate(variables)}
        if all(c.satisfied_by(assignment) for c in constraints):
            value = sum(
                w * assignment[v] for w, v in zip(objective_weights, variables)
            )
            if best is None or value < best:
                best = value
    return best


class TestCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(data=random_milp())
    def test_backends_agree_with_brute_force(self, data):
        model, variables, objective = data
        expected = brute_force_optimum(
            variables, model.constraints, objective
        )
        highs = model.solve(ScipyBackend())
        bnb = model.solve(BranchBoundBackend())
        if expected is None:
            assert highs.status is SolveStatus.INFEASIBLE
            assert bnb.status is SolveStatus.INFEASIBLE
        else:
            assert highs.status is SolveStatus.OPTIMAL
            assert bnb.status is SolveStatus.OPTIMAL
            assert highs.objective == pytest.approx(expected, abs=1e-6)
            assert bnb.objective == pytest.approx(expected, abs=1e-6)
