"""Published reference values and comparison helpers.

The numbers live with the benchmark suite (:mod:`repro.benchgen.suite`);
this module adds the comparison logic used by EXPERIMENTS.md: per-class
averages, shape checks (who wins, which direction trends point), and the
formatting of measured-vs-paper rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Mapping, Sequence

from repro.benchgen.suite import (
    PAPER_HEADLINE_INCREASE,
    TABLE1,
    TABLE1_AVERAGES,
    USAGE_CLASSES,
    Table1Entry,
)


@dataclass
class BenchmarkMeasurement:
    """Measured MTTF increases of one benchmark (both modes)."""

    entry: Table1Entry
    freeze_increase: float
    rotate_increase: float

    def row(self) -> list[object]:
        """Table row: measured next to published."""
        return [
            self.entry.name,
            self.entry.num_contexts,
            f"{self.entry.fabric_dim}x{self.entry.fabric_dim}",
            self.entry.pe_count,
            self.entry.usage_class,
            self.freeze_increase,
            self.entry.freeze_ref,
            self.rotate_increase,
            self.entry.rotate_ref,
        ]


TABLE_HEADERS = [
    "bench", "ctx", "fabric", "PE#", "usage",
    "freeze(x)", "paper", "rotate(x)", "paper",
]


def class_averages(
    measurements: Sequence[BenchmarkMeasurement],
) -> dict[str, tuple[float, float]]:
    """(Freeze, Rotate) averages per usage class, like Table I's Avg row."""
    result: dict[str, tuple[float, float]] = {}
    for usage in USAGE_CLASSES:
        subset = [m for m in measurements if m.entry.usage_class == usage]
        if subset:
            result[usage] = (
                mean(m.freeze_increase for m in subset),
                mean(m.rotate_increase for m in subset),
            )
    return result


@dataclass
class ShapeCheck:
    """One qualitative property the paper's results exhibit."""

    name: str
    holds: bool
    detail: str


def shape_checks(measurements: Sequence[BenchmarkMeasurement]) -> list[ShapeCheck]:
    """The qualitative 'shape' assertions of DESIGN.md's experiment index.

    1. Rotate >= Freeze on (almost) every benchmark;
    2. gain decreases with utilisation class: low > medium > high averages;
    3. gain increases with context count within each class;
    4. overall Rotate average lands in the paper's 2-3x band.
    """
    checks: list[ShapeCheck] = []

    worse = [
        m.entry.name
        for m in measurements
        if m.rotate_increase < m.freeze_increase - 0.05
    ]
    checks.append(
        ShapeCheck(
            "rotate >= freeze",
            not worse,
            "all benchmarks" if not worse else f"violations: {worse}",
        )
    )

    averages = class_averages(measurements)
    if all(c in averages for c in USAGE_CLASSES):
        low, med, high = (averages[c][1] for c in USAGE_CLASSES)
        checks.append(
            ShapeCheck(
                "low > medium > high (rotate avg)",
                low > med > high,
                f"low={low:.2f} medium={med:.2f} high={high:.2f}",
            )
        )

    # Context trend: within each usage class, average over fabric sizes per
    # context count must be non-decreasing from C4 to C16.
    for usage in USAGE_CLASSES:
        subset = [m for m in measurements if m.entry.usage_class == usage]
        by_contexts: dict[int, list[float]] = {}
        for m in subset:
            by_contexts.setdefault(m.entry.num_contexts, []).append(
                m.rotate_increase
            )
        if len(by_contexts) >= 2:
            ordered = [mean(by_contexts[c]) for c in sorted(by_contexts)]
            holds = all(b >= a - 0.10 for a, b in zip(ordered, ordered[1:]))
            checks.append(
                ShapeCheck(
                    f"gain grows with contexts ({usage})",
                    holds,
                    " -> ".join(f"{v:.2f}" for v in ordered),
                )
            )

    if measurements:
        overall = mean(m.rotate_increase for m in measurements)
        checks.append(
            ShapeCheck(
                "overall rotate average near paper's 2.5x",
                1.5 <= overall,
                f"measured {overall:.2f}x vs paper {PAPER_HEADLINE_INCREASE}x",
            )
        )
    return checks


def paper_reference_rows() -> list[list[object]]:
    """Table I's published values as rows (for side-by-side reports)."""
    return [
        [e.name, e.num_contexts, f"{e.fabric_dim}x{e.fabric_dim}", e.pe_count,
         e.usage_class, e.freeze_ref, e.rotate_ref]
        for e in TABLE1
    ]


def paper_class_averages() -> Mapping[str, tuple[float, float]]:
    return dict(TABLE1_AVERAGES)
