"""NBTI threshold-voltage degradation model (paper Eq. 1).

``Vth_shift(t) = A_NBTI * ST(t)^n * exp(-Ea / kT) * Vth0``

where ``ST(t)`` is the accumulated stress time up to ``t`` — for a PE with
long-term duty cycle ``d``, ``ST(t) = d * t`` — ``n`` is the
fabrication-dependent exponent (0.25, reaction-diffusion), ``Ea`` the
activation energy, ``k`` Boltzmann's constant and ``T`` the (steady-state)
temperature.  The device fails when the shift reaches a fraction
(default 10%, per [3]) of the fresh threshold voltage ``Vth0``.

Note the Arrhenius factor appears with a *positive* overall effect of
temperature on degradation: hotter PEs age faster.  Through the ``1/n``
exponent in the inverted failure condition, temperature is the strongest
lever — which is why the paper couples the floorplanner to a thermal
simulator rather than using stress time alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AgingError
from repro.units import (
    BOLTZMANN_EV_PER_K,
    NBTI_ACTIVATION_ENERGY_EV,
    NBTI_PREFACTOR,
    NBTI_REFERENCE_MTTF_YEARS,
    NBTI_REFERENCE_TEMP_K,
    NBTI_TIME_EXPONENT,
    VTH0_V,
    VTH_FAILURE_FRACTION,
    years_to_seconds,
)


@dataclass(frozen=True)
class NbtiModel:
    """Parameterised Eq. (1) with the failure criterion.

    All defaults reproduce the constants in :mod:`repro.units`; tests and
    sensitivity ablations construct variants.
    """

    prefactor: float = NBTI_PREFACTOR
    time_exponent: float = NBTI_TIME_EXPONENT
    activation_energy_ev: float = NBTI_ACTIVATION_ENERGY_EV
    vth0_v: float = VTH0_V
    failure_fraction: float = VTH_FAILURE_FRACTION

    def __post_init__(self) -> None:
        if not 0 < self.time_exponent < 1:
            raise AgingError(
                f"time exponent n={self.time_exponent} outside (0, 1)"
            )
        if self.prefactor <= 0 or self.vth0_v <= 0:
            raise AgingError("prefactor and Vth0 must be positive")
        if not 0 < self.failure_fraction < 1:
            raise AgingError(
                f"failure fraction {self.failure_fraction} outside (0, 1)"
            )

    # -- Eq. (1) ------------------------------------------------------------
    def arrhenius(self, temperature_k: float) -> float:
        """``exp(-Ea / kT)``."""
        if temperature_k <= 0:
            raise AgingError(f"temperature {temperature_k} K invalid")
        return math.exp(
            -self.activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature_k)
        )

    def vth_shift(self, stress_time_s: float, temperature_k: float) -> float:
        """Threshold-voltage shift (V) after ``stress_time_s`` of stress."""
        if stress_time_s < 0:
            raise AgingError(f"negative stress time {stress_time_s}")
        return (
            self.prefactor
            * stress_time_s**self.time_exponent
            * self.arrhenius(temperature_k)
            * self.vth0_v
        )

    def vth_shift_at(
        self, elapsed_s: float, duty: float, temperature_k: float
    ) -> float:
        """Shift after ``elapsed_s`` of operation at a given duty cycle."""
        if not 0 <= duty <= 1:
            raise AgingError(f"duty {duty} outside [0, 1]")
        return self.vth_shift(duty * elapsed_s, temperature_k)

    # -- failure inversion ------------------------------------------------------
    @property
    def failure_shift_v(self) -> float:
        """The Vth shift (V) defined as failure."""
        return self.failure_fraction * self.vth0_v

    def stress_time_to_failure_s(self, temperature_k: float) -> float:
        """Accumulated stress time (s) at which the failure shift is reached."""
        base = self.failure_fraction / (
            self.prefactor * self.arrhenius(temperature_k)
        )
        return base ** (1.0 / self.time_exponent)

    def time_to_failure_s(self, duty: float, temperature_k: float) -> float:
        """Wall-clock MTTF (s) of a PE at the given duty and temperature.

        ``inf`` for a PE that is never stressed (duty 0).
        """
        if not 0 <= duty <= 1:
            raise AgingError(f"duty {duty} outside [0, 1]")
        if duty == 0:
            return math.inf
        return self.stress_time_to_failure_s(temperature_k) / duty


def calibrate_prefactor(
    mttf_years: float = NBTI_REFERENCE_MTTF_YEARS,
    temperature_k: float = NBTI_REFERENCE_TEMP_K,
    duty: float = 1.0,
    time_exponent: float = NBTI_TIME_EXPONENT,
    activation_energy_ev: float = NBTI_ACTIVATION_ENERGY_EV,
    failure_fraction: float = VTH_FAILURE_FRACTION,
) -> float:
    """Prefactor A_NBTI that yields ``mttf_years`` at reference conditions.

    Inverts the failure condition; with the defaults this reproduces
    :data:`repro.units.NBTI_PREFACTOR`.
    """
    if mttf_years <= 0 or not 0 < duty <= 1:
        raise AgingError("reference MTTF and duty must be positive")
    stress_s = duty * years_to_seconds(mttf_years)
    arrhenius = math.exp(
        -activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature_k)
    )
    return failure_fraction / (stress_s**time_exponent * arrhenius)
