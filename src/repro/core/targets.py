"""Step 1: delay-unaware determination of the ST_target lower bound.

The accumulated-stress budget ``ST_target`` of Eq. (3) needs a starting
value that lower-bounds any feasible delay-aware solution.  The paper
obtains it by executing Eq. (3) **without** the critical-path and
path-delay constraints — making it delay-unaware, hence optimistic — and
binary-searching ``ST_target`` between

* ``ST_low`` — the *average* accumulated stress over all PEs of the
  original floorplan (no levelling can beat the average), and
* ``ST_up``  — the *maximum* accumulated stress of the original floorplan
  (the original binding itself is feasible there).

The bisection tests feasibility on the LP relaxation (cheap and optimistic,
hence still a lower bound); the returned target is then verified with the
paper's two-step LP->ILP solve and nudged up by ``delta`` until an integral
delay-unaware floorplan exists — "the smallest value of ST_target that
yields a valid (albeit delay-unaware) floorplan solution".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.stress import StressMap
from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.core.remap import (
    GreedyContext,
    RemapConfig,
    build_remap_model,
    default_candidates,
    require_not_error,
    restamp_remap_model,
    solve_remap,
)
from repro.core.rotation import FrozenPlan
from repro.errors import ModelError
from repro.hls.allocate import MappedDesign
from repro.milp.scipy_backend import ScipyBackend
from repro.obs import counter, get_logger, span

_log = get_logger("core.targets")


@dataclass
class StressTargetResult:
    """Outcome of the Step-1 search."""

    st_target_ns: float
    st_low_ns: float
    st_up_ns: float
    bisection_steps: int = 0
    ilp_bumps: int = 0
    #: Every LP feasibility probe of the bisection, in order:
    #: ``[{"st_target_ns": ..., "feasible": ...}, ...]``.
    probes: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)


def _empty_frozen() -> FrozenPlan:
    return FrozenPlan(positions={}, orientation_of_context={})


def stress_target_lower_bound(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    original_stress: StressMap,
    config: RemapConfig | None = None,
    delta_ns: float | None = None,
    tolerance_ns: float | None = None,
    backend: ScipyBackend | None = None,
) -> StressTargetResult:
    """Binary-search the delay-unaware ST_target lower bound (Algorithm 1, line 2)."""
    with span("binary_search") as search_span:
        result = _stress_target_lower_bound(
            design, fabric, original, original_stress, config,
            delta_ns, tolerance_ns, backend,
        )
        search_span.set(
            bisection_steps=result.bisection_steps,
            ilp_bumps=result.ilp_bumps,
            st_target_ns=result.st_target_ns,
        )
    counter("algorithm1.bisection_steps").inc(result.bisection_steps)
    counter("algorithm1.st_target_ilp_bumps").inc(result.ilp_bumps)
    _log.debug(
        "ST_target lower bound %.3f ns in [%.3f, %.3f] "
        "(%d bisection steps, %d ILP bumps)",
        result.st_target_ns, result.st_low_ns, result.st_up_ns,
        result.bisection_steps, result.ilp_bumps,
    )
    return result


def _stress_target_lower_bound(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    original_stress: StressMap,
    config: RemapConfig | None = None,
    delta_ns: float | None = None,
    tolerance_ns: float | None = None,
    backend: ScipyBackend | None = None,
) -> StressTargetResult:
    config = config or RemapConfig()
    backend = backend or config.make_backend()
    st_low = original_stress.mean_accumulated_ns
    st_up = original_stress.max_accumulated_ns
    if st_up <= 0:
        raise ModelError("original floorplan carries no stress; nothing to level")
    if delta_ns is None:
        delta_ns = default_delta_ns(original_stress)
    if tolerance_ns is None:
        tolerance_ns = max(delta_ns / 2.0, 1e-3)

    frozen = _empty_frozen()
    candidates = default_candidates(
        design, original, frozen, fabric, config.resolved_window(fabric)
    )
    probes: list[dict] = []

    # One delay-unaware Eq. (3) model serves every bisection probe and
    # every ILP bump: each target is an O(stress rows) re-stamp of the
    # ``st_target`` parameter on the cached lowering, not a rebuild.
    model, variables, build_stats = build_remap_model(
        design,
        fabric,
        frozen,
        candidates,
        monitored_paths=(),  # delay-unaware: no path constraints
        cpd_ns=float("inf"),
        st_target_ns=st_up,
        name="step1",
        objective="null",
    )

    def lp_feasible(target: float) -> bool:
        with span("lp_probe", st_target_ns=target) as probe_span:
            restamp_remap_model(model, target)
            relaxation = model.relaxed()
            solution = relaxation.solve(backend)
            relaxation.restore_types()
            # ERROR/UNBOUNDED is a solver failure, not infeasibility —
            # raise so the ladder engages instead of biasing the bisection.
            require_not_error(solution)
            probe_span.set(feasible=solution.status.has_solution)
        probes.append(
            {"st_target_ns": target, "feasible": solution.status.has_solution}
        )
        return solution.status.has_solution

    low, high = st_low, st_up
    steps = 0
    # The original binding is feasible at st_up, so `high` is always a
    # certified-feasible upper end; `low` may or may not be feasible.
    if lp_feasible(low):
        high = low
    else:
        while high - low > tolerance_ns:
            steps += 1
            mid = (low + high) / 2.0
            if lp_feasible(mid):
                high = mid
            else:
                low = mid

    # Verify integrality with the paper's two-step solve, nudging up by
    # delta until a valid delay-unaware floorplan exists.
    target = high
    bumps = 0
    stats: dict = {}
    while True:
        restamp_remap_model(model, target)
        greedy_ctx = GreedyContext(
            design=design,
            fabric=fabric,
            frozen_positions={},
            st_target_ns=target,
            frozen_stress_ns={},
        )
        # Deliberately no warm hints here: a warm-fixing trial can certify
        # targets the cold two-step pipeline rejects, and a tighter
        # ST_target makes the *downstream* Eq. (3) model harder — Step 1's
        # verdict must keep the cold pipeline's semantics.  Warm fixing is
        # confined to Algorithm 1's relax loop, where a hit accepts a
        # floorplan outright (gated by full STA) and is pure upside.
        outcome = solve_remap(model, variables, config, backend, greedy_ctx)
        stats = {**build_stats, **outcome.stats}
        if outcome.feasible:
            break
        bumps += 1
        target += delta_ns
        if target > st_up + delta_ns:
            # The original binding is integral and feasible at st_up; use it.
            target = st_up
            break
    return StressTargetResult(
        st_target_ns=target,
        st_low_ns=st_low,
        st_up_ns=st_up,
        bisection_steps=steps,
        ilp_bumps=bumps,
        probes=probes,
        stats=stats,
    )


def default_delta_ns(original_stress: StressMap) -> float:
    """The relaxation stepsize Delta of Algorithm 1.

    One twentieth of the [ST_low, ST_up] span, floored at a small fraction
    of the clock period so the loop always makes progress.
    """
    span = original_stress.max_accumulated_ns - original_stress.mean_accumulated_ns
    floor = original_stress.clock_period_ns * 0.02
    return max(span / 20.0, floor)
