"""End-to-end integration tests across all subsystems.

These run the complete pipeline — mini-C (or synthetic suite entries)
through HLS, placement, timing, the MILP re-mapper, thermal and aging —
and check the cross-module invariants the library guarantees:

* the re-mapped CPD never exceeds the original (paper's headline);
* the schedule (op -> context) is untouched by re-mapping;
* total stress is conserved, its maximum reduced;
* DFG semantics are preserved end to end (the floorplan is a layout
  artefact — outputs cannot change);
* suite benchmarks reproduce the Table I *shape* at small scale.
"""

from __future__ import annotations

import pytest

from repro import (
    Fabric,
    compile_source,
    run_flow,
    schedule_dfg,
    tech_map,
)
from repro.arch import check_same_schedule
from repro.benchgen import entry, kernel_source
from repro.benchgen.synth import build_benchmark
from repro.core import Algorithm1Config, FlowConfig, RemapConfig

FAST = FlowConfig(
    algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=30))
)


class TestKernelPipelines:
    @pytest.mark.parametrize("name", ["fir8", "checksum"])
    def test_kernel_through_full_flow(self, name):
        dfg = compile_source(kernel_source(name), name)
        fabric = Fabric(4, 4)
        design = tech_map(schedule_dfg(dfg, capacity=fabric.num_pes))
        result = run_flow(design, fabric, FAST)
        assert result.cpd_preserved
        assert result.mttf_increase >= 1.0
        check_same_schedule(
            result.original.floorplan, result.remapped.floorplan
        )

    def test_semantics_survive_the_flow(self):
        """The floorplan is layout only: the DFG still computes the same
        function afterwards (trivially true by construction — asserted to
        pin the architectural separation)."""
        source = kernel_source("checksum")
        dfg = compile_source(source, "checksum")
        before = dfg.evaluate({"data": 991, "key": 77})
        fabric = Fabric(4, 4)
        design = tech_map(schedule_dfg(dfg, capacity=16))
        result = run_flow(design, fabric, FAST)
        after = design.source_dfg.evaluate({"data": 991, "key": 77})
        assert before == after
        assert result.remapped.floorplan.num_ops == design.num_ops


class TestSuiteShape:
    """Small-scale Table I shape checks (full scale in benchmarks/)."""

    @pytest.fixture(scope="class")
    def gains(self):
        results = {}
        for name in ("B1", "B19"):  # low vs high utilisation, C4F4
            design, fabric = build_benchmark(entry(name).spec())
            results[name] = run_flow(design, fabric, FAST)
        return results

    def test_all_gain_without_delay_cost(self, gains):
        for name, result in gains.items():
            assert result.cpd_preserved, name
            assert result.mttf_increase >= 1.0, name

    def test_low_utilisation_gains_more(self, gains):
        assert (
            gains["B1"].mttf_increase >= gains["B19"].mttf_increase * 0.9
        )

    def test_stress_levelling_factor(self, gains):
        """B1 (38% util): max stress should drop markedly."""
        result = gains["B1"]
        before = result.original.stress.max_accumulated_ns
        after = result.remapped.stress.max_accumulated_ns
        assert after < before
        assert before / after >= 1.3

    def test_total_stress_conserved(self, gains):
        for result in gains.values():
            assert result.original.stress.total_ns == pytest.approx(
                result.remapped.stress.total_ns
            )


class TestDeterminismEndToEnd:
    def test_full_flow_reproducible(self):
        design, fabric = build_benchmark(entry("B1").spec())
        a = run_flow(design, fabric, FAST)
        b = run_flow(design, fabric, FAST)
        assert a.remapped.floorplan == b.remapped.floorplan
        assert a.mttf_increase == pytest.approx(b.mttf_increase)
