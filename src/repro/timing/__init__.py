"""Static timing analysis: per-context CPD, critical paths, path filtering.

Substitute for the commercial timing-analysis tool the paper calls after
each re-mapping, plus the M-longest-paths / within-20%-of-CPD filter of
Section V-B.2.
"""

from repro.timing.graph import (
    ContextTimingGraph,
    Endpoint,
    EndpointKind,
    build_timing_graphs,
)
from repro.timing.kpaths import (
    DEFAULT_MAX_PATHS,
    DEFAULT_RETENTION,
    MonitoredPath,
    PathFilterResult,
    enumerate_context_paths,
    filter_paths,
)
from repro.timing.sta import (
    ContextTiming,
    TimingPath,
    TimingReport,
    all_critical_paths,
    analyze,
    analyze_context,
    critical_paths,
)

__all__ = [
    "ContextTiming",
    "ContextTimingGraph",
    "DEFAULT_MAX_PATHS",
    "DEFAULT_RETENTION",
    "Endpoint",
    "EndpointKind",
    "MonitoredPath",
    "PathFilterResult",
    "TimingPath",
    "TimingReport",
    "all_critical_paths",
    "analyze",
    "analyze_context",
    "build_timing_graphs",
    "critical_paths",
    "enumerate_context_paths",
    "filter_paths",
]
