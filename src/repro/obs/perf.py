"""Performance-regression harness: ``repro bench run`` / ``repro bench compare``.

``run_suite`` executes the smoke-scale benchmark subset through the full
aging-aware flow, collecting per-entry

* wall time and per-stage wall times (from the span tree),
* solver statistics (solve count, branch-and-bound/HiGHS nodes, worst
  final MIP gap — from the ``solver`` spans' :class:`SolveStats` attrs),
* peak Python heap (``tracemalloc``) and process RSS (``resource``),
* the scientific outputs (MTTF increase, CPD preservation, degradation)
  so a perf regression can be told apart from a quality regression.

The result is a schema-versioned document (``kind: bench_record``,
written as ``BENCH_<timestamp>.json`` by the CLI); ``compare_records``
diffs two such documents against configurable relative thresholds and
reports regressions — the CLI exits nonzero on any, making the pair a
CI-ready performance gate.

This module deliberately lives outside ``repro.obs.__init__``: it imports
``repro.core`` (which itself imports ``repro.obs``), so eagerly importing
it from the package root would be a cycle.  Import it as
``from repro.obs import perf`` / ``from repro.obs.perf import run_suite``.
"""

from __future__ import annotations

import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.obs.logs import get_logger
from repro.obs.metrics import registry
from repro.obs.sinks import CollectorSink, replay_records
from repro.obs.spans import attached, clear_sinks
from repro.obs.trace import EVALUATION_STAGES, summarize_records

_log = get_logger("obs.perf")

#: Version tag of the bench record layout (bump on breaking change).
BENCH_SCHEMA = "repro.bench/1"

#: Default subset: representative Table I entries across usage classes
#: and context counts, all runnable at smoke scale in minutes.
SMOKE_BENCHMARKS = ("B1", "B4", "B10", "B13", "B19", "B22")

#: Fabric cap of the smoke profile (entries are scaled down to fit).
SMOKE_MAX_FABRIC = 8


def _rss_mb() -> float | None:
    """Process peak RSS in MiB, when the platform exposes it."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return peak / divisor


def _solver_aggregates(solves: list[dict]) -> dict:
    """Roll ``solver`` span records up into one per-entry summary.

    ``limit_hits`` stays the historical total; ``limit_reasons`` breaks it
    out per reason (``deadline``, ``node_limit``, ``time_limit``,
    ``gap_limit``, ...) so a regression in limit hits names its cause.
    """
    agg = {
        "solves": len(solves),
        "milp_solves": 0,
        "nodes": 0,
        "max_mip_gap": 0.0,
        "solve_s": 0.0,
        "limit_hits": 0,
        "limit_reasons": {},
    }
    for record in solves:
        attrs = record.get("attrs", {})
        agg["solve_s"] += float(record.get("duration_s", 0.0))
        if attrs.get("kind") == "milp":
            agg["milp_solves"] += 1
        agg["nodes"] += int(attrs.get("nodes") or 0)
        gap = attrs.get("gap")
        if gap is not None:
            agg["max_mip_gap"] = max(agg["max_mip_gap"], float(gap))
        reason = attrs.get("limit_reason")
        if reason:
            agg["limit_hits"] += 1
            agg["limit_reasons"][reason] = (
                agg["limit_reasons"].get(reason, 0) + 1
            )
    agg["solve_s"] = round(agg["solve_s"], 6)
    return agg


def run_entry(
    name: str,
    mode: str = "rotate",
    time_limit_s: float = 15.0,
    max_fabric: int | None = SMOKE_MAX_FABRIC,
    seed: int = 0,
    max_iterations: int = 10,
) -> dict:
    """Run one benchmark through the flow and measure it.

    Returns the per-entry dict of a bench record (see :func:`run_suite`).
    """
    # Imports are deferred so importing this module never drags the whole
    # flow stack in (and cannot form an import cycle with repro.core).
    from repro.benchgen.suite import entry as suite_entry
    from repro.benchgen.synth import build_benchmark
    from repro.core.algorithm1 import Algorithm1Config
    from repro.core.flow import AgingAwareFlow, FlowConfig
    from repro.core.remap import RemapConfig

    bench = suite_entry(name)
    if max_fabric is not None:
        bench = bench.scaled(max_fabric)
    design, fabric = build_benchmark(bench.spec(seed))
    flow = AgingAwareFlow(
        FlowConfig(
            algorithm1=Algorithm1Config(
                mode=mode,
                max_iterations=max_iterations,
                remap=RemapConfig(time_limit_s=time_limit_s),
            )
        )
    )

    collector = CollectorSink()
    tracing_was_on = tracemalloc.is_tracing()
    if not tracing_was_on:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    with attached(collector):
        result = flow.run(design, fabric)
    wall_s = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    if not tracing_was_on:
        tracemalloc.stop()

    summary = summarize_records(collector.records)
    stages = {
        row.path: {"count": row.count, "total_s": round(row.total_s, 6)}
        for row in summary.stages
    }
    entry_record = {
        "benchmark": name,
        "fabric": f"{fabric.rows}x{fabric.cols}",
        "contexts": design.num_contexts,
        "wall_s": round(wall_s, 6),
        "peak_mem_mb": round(peak_bytes / (1024.0 * 1024.0), 3),
        "mttf_increase": result.mttf_increase,
        "cpd_preserved": result.cpd_preserved,
        "degradation": result.remap.degradation,
        "stages": stages,
        "solver": _solver_aggregates(summary.solves),
        "alg1": summary.alg1_runs[0] if summary.alg1_runs else None,
    }
    return entry_record


def _suite_worker(name: str, opts: dict) -> tuple[dict, list[dict]]:
    """Process-pool body of one suite entry.

    Runs in a worker process, so spans emitted there never reach the
    parent's sinks directly; a collector captures them as JSONL-shaped
    dicts (picklable) for the parent to replay.
    """
    clear_sinks()  # drop sinks (and their file handles) inherited via fork
    collector = CollectorSink()
    with attached(collector):
        entry_record = run_entry(name, **opts)
    return entry_record, collector.records


def _run_entries_parallel(
    names: tuple[str, ...], opts: dict, jobs: int
) -> dict:
    """Fan suite entries out over a process pool; results in suite order.

    Worker trace records are replayed into the parent's attached sinks as
    each entry completes, so ``--trace`` output covers the whole sweep.
    The first worker failure propagates after pending entries are
    cancelled.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed

    results: dict[str, dict] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = {
            pool.submit(_suite_worker, name, opts): name for name in names
        }
        try:
            for future in as_completed(futures):
                name = futures[future]
                entry_record, records = future.result()
                replay_records(records)
                results[name] = entry_record
                _log.info(
                    "bench %s: %.2fs, %.1f MiB peak, %d solves",
                    name, entry_record["wall_s"], entry_record["peak_mem_mb"],
                    entry_record["solver"]["solves"],
                )
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return {name: results[name] for name in names}


def run_suite(
    benchmarks: tuple[str, ...] | list[str] | None = None,
    mode: str = "rotate",
    time_limit_s: float = 15.0,
    max_fabric: int | None = SMOKE_MAX_FABRIC,
    seed: int = 0,
    timestamp: str | None = None,
    jobs: int = 1,
) -> dict:
    """Run the benchmark suite and return a schema-versioned bench record.

    ``jobs > 1`` executes entries on a process pool (each entry is an
    independent flow run with its own seed-derived inputs, so results are
    identical to a serial run and the record keeps suite order).  The
    ``metrics`` snapshot then only reflects the parent process — per-entry
    numbers, which live in the entries themselves, are unaffected.
    """
    names = tuple(benchmarks) if benchmarks else SMOKE_BENCHMARKS
    opts = dict(
        mode=mode, time_limit_s=time_limit_s, max_fabric=max_fabric, seed=seed
    )
    if jobs > 1 and len(names) > 1:
        entries = _run_entries_parallel(names, opts, jobs)
    else:
        entries = {}
        for name in names:
            _log.info("bench %s ...", name)
            entries[name] = run_entry(name, **opts)
            _log.info(
                "bench %s: %.2fs, %.1f MiB peak, %d solves",
                name, entries[name]["wall_s"], entries[name]["peak_mem_mb"],
                entries[name]["solver"]["solves"],
            )
    record = {
        "schema": 1,
        "kind": "bench_record",
        "bench_schema": BENCH_SCHEMA,
        "timestamp": timestamp or time.strftime("%Y%m%dT%H%M%S"),
        "config": {
            "mode": mode,
            "time_limit_s": time_limit_s,
            "max_fabric": max_fabric,
            "seed": seed,
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "process_peak_rss_mb": _rss_mb(),
        "entries": entries,
        "metrics": registry().snapshot(),
    }
    return record


# -- comparison ----------------------------------------------------------------


@dataclass
class CompareThresholds:
    """Relative regression allowances of ``compare_records``.

    A metric regresses when ``candidate > baseline * (1 + rel)`` **and**
    the absolute increase exceeds the noise floor — small quantities
    (a 0.2 s stage, a 3-node solve) would otherwise trip on timer jitter.
    """

    wall_rel: float = 0.25
    wall_abs_s: float = 0.5
    mem_rel: float = 0.30
    mem_abs_mb: float = 8.0
    nodes_rel: float = 0.50
    nodes_abs: int = 50
    #: Per-evaluation-stage wall time (sta, stress, thermal, ...).  The
    #: stages are small, so the relative allowance is loose but the
    #: absolute floor is tight — a vectorized kernel silently falling
    #: back to the scalar path shows up as a multi-x stage blowup well
    #: past both.
    stage_rel: float = 0.60
    stage_abs_s: float = 0.05


@dataclass
class Regression:
    """One metric of one entry exceeding its threshold."""

    benchmark: str
    metric: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline

    def describe(self) -> str:
        return (
            f"{self.benchmark}: {self.metric} {self.baseline:.3f} -> "
            f"{self.candidate:.3f} ({self.ratio:.2f}x)"
        )


@dataclass
class CompareResult:
    """Everything ``compare_records`` derived from the two documents."""

    rows: list[list[object]] = field(default_factory=list)
    regressions: list[Regression] = field(default_factory=list)
    #: Evaluation-stage wall-time regressions, kept apart from the
    #: headline metrics: the CLI gates on them only under
    #: ``--gate-stages`` (where they are fatal even with ``--warn-only``).
    stage_regressions: list[Regression] = field(default_factory=list)
    #: Per-entry evaluation-stage rows:
    #: ``[bench, stage, base_s, cand_s, ratio]``.
    stage_rows: list[list[object]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _check(
    result: CompareResult,
    benchmark: str,
    metric: str,
    base: float,
    cand: float,
    rel: float,
    abs_floor: float,
) -> None:
    if cand > base * (1.0 + rel) and cand - base > abs_floor:
        result.regressions.append(
            Regression(benchmark=benchmark, metric=metric,
                       baseline=base, candidate=cand)
        )


def _stage_totals(entry: dict) -> dict[str, float]:
    """Evaluation-stage wall totals of one bench entry, by leaf name.

    Bench records store stages keyed by full span path; this folds every
    path whose leaf is an :data:`~repro.obs.trace.EVALUATION_STAGES`
    name into one total — the same aggregation
    :meth:`~repro.obs.trace.TraceSummary.evaluation_stages` applies to
    live traces.
    """
    totals: dict[str, float] = {}
    for path, stats in (entry.get("stages") or {}).items():
        leaf = path.split(">")[-1].strip()
        if leaf in EVALUATION_STAGES:
            totals[leaf] = totals.get(leaf, 0.0) + float(
                stats.get("total_s", 0.0)
            )
    return totals


def _compare_stages(
    result: CompareResult,
    name: str,
    base: dict,
    cand: dict,
    th: CompareThresholds,
) -> None:
    base_totals = _stage_totals(base)
    cand_totals = _stage_totals(cand)
    for stage in EVALUATION_STAGES:
        b = base_totals.get(stage)
        c = cand_totals.get(stage)
        if b is None and c is None:
            continue
        b, c = b or 0.0, c or 0.0
        result.stage_rows.append(
            [name, stage, round(b, 4), round(c, 4), _ratio_cell(b, c)]
        )
        if c > b * (1.0 + th.stage_rel) and c - b > th.stage_abs_s:
            result.stage_regressions.append(
                Regression(
                    benchmark=name,
                    metric=f"stage.{stage}",
                    baseline=b,
                    candidate=c,
                )
            )


def compare_records(
    baseline: dict,
    candidate: dict,
    thresholds: CompareThresholds | None = None,
) -> CompareResult:
    """Diff two bench records; regressions exceed the given thresholds."""
    th = thresholds or CompareThresholds()
    result = CompareResult()
    for doc, label in ((baseline, "baseline"), (candidate, "candidate")):
        if doc.get("kind") != "bench_record":
            result.warnings.append(f"{label} is not a bench_record document")
        elif doc.get("bench_schema") != BENCH_SCHEMA:
            result.warnings.append(
                f"{label} bench schema {doc.get('bench_schema')!r} != "
                f"{BENCH_SCHEMA!r}; comparison may be unreliable"
            )
    base_entries = baseline.get("entries", {})
    cand_entries = candidate.get("entries", {})
    for name in base_entries:
        if name not in cand_entries:
            result.warnings.append(f"{name}: missing from candidate run")
    for name in cand_entries:
        if name not in base_entries:
            result.warnings.append(f"{name}: new in candidate run (no baseline)")

    for name in sorted(set(base_entries) & set(cand_entries)):
        base, cand = base_entries[name], cand_entries[name]
        b_wall, c_wall = float(base["wall_s"]), float(cand["wall_s"])
        b_mem, c_mem = float(base["peak_mem_mb"]), float(cand["peak_mem_mb"])
        b_nodes = int(base.get("solver", {}).get("nodes", 0))
        c_nodes = int(cand.get("solver", {}).get("nodes", 0))
        _check(result, name, "wall_s", b_wall, c_wall,
               th.wall_rel, th.wall_abs_s)
        _check(result, name, "peak_mem_mb", b_mem, c_mem,
               th.mem_rel, th.mem_abs_mb)
        _check(result, name, "solver.nodes", float(b_nodes), float(c_nodes),
               th.nodes_rel, float(th.nodes_abs))
        b_hits = int(base.get("solver", {}).get("limit_hits", 0))
        c_hits = int(cand.get("solver", {}).get("limit_hits", 0))
        if c_hits > b_hits:
            result.warnings.append(
                f"{name}: solver limit hits rose {b_hits} -> {c_hits} "
                f"(baseline {_format_reasons(base)}, "
                f"candidate {_format_reasons(cand)})"
            )
        b_mttf = float(base.get("mttf_increase", 0.0))
        c_mttf = float(cand.get("mttf_increase", 0.0))
        if c_mttf < b_mttf * 0.95:
            result.warnings.append(
                f"{name}: mttf_increase dropped {b_mttf:.2f} -> {c_mttf:.2f} "
                "(quality, not perf — investigate separately)"
            )
        if base.get("cpd_preserved") and not cand.get("cpd_preserved"):
            result.warnings.append(f"{name}: CPD no longer preserved")
        _compare_stages(result, name, base, cand, th)
        result.rows.append([
            name,
            round(b_wall, 3), round(c_wall, 3),
            _ratio_cell(b_wall, c_wall),
            round(b_mem, 1), round(c_mem, 1),
            b_nodes, c_nodes,
        ])
    return result


def _format_reasons(entry: dict) -> str:
    """``reason=count`` breakdown of an entry's solver limit hits."""
    reasons = entry.get("solver", {}).get("limit_reasons", {})
    if not reasons:
        return "no reason breakdown"
    return ", ".join(
        f"{reason}={count}" for reason, count in sorted(reasons.items())
    )


def _ratio_cell(base: float, cand: float) -> str:
    if base <= 0:
        return "-"
    return f"{cand / base:.2f}x"


def bench_table_rows(record: dict) -> list[list[object]]:
    """``bench run`` summary rows: one line per entry."""
    rows = []
    for name, entry in record.get("entries", {}).items():
        solver = entry.get("solver", {})
        rows.append([
            name,
            entry.get("fabric", "-"),
            round(float(entry["wall_s"]), 3),
            round(float(entry["peak_mem_mb"]), 1),
            solver.get("solves", 0),
            solver.get("nodes", 0),
            round(float(entry.get("mttf_increase", 0.0)), 2),
            entry.get("degradation", "-"),
        ])
    return rows
