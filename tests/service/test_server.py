"""The HTTP layer: routes, status codes, shed headers, slow clients."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.resilience.faults import fault_scope
from repro.service import (
    AdmissionConfig,
    FloorplanService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    read_endpoint,
)

REQUEST = {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0}


def run_with_server(tmp_path, body, **config_overrides):
    """Start service + HTTP server, run ``body(client)`` in a thread."""
    base = dict(
        state_dir=tmp_path / "state",
        concurrency=2,
        retry_backoff_s=0.01,
        attempt_timeout_s=120.0,
    )
    base.update(config_overrides)

    async def main():
        service = FloorplanService(ServiceConfig(**base))
        await service.start()
        server = ServiceServer(service, port=0)
        await server.start()
        client = ServiceClient("127.0.0.1", server.port, timeout_s=120)
        try:
            return await asyncio.to_thread(body, client, service)
        finally:
            await server.close()
            await service.close()

    return asyncio.run(main())


class TestProbes:
    def test_health_ready_metrics(self, tmp_path):
        def body(client, service):
            assert client.health() == {"ok": True}
            assert client.ready()
            metrics = client.metrics()
            assert "service" in metrics and "metrics" in metrics
            assert metrics["service"]["admission"]["depth"] == 0

        run_with_server(tmp_path, body)

    def test_endpoint_file_discovery(self, tmp_path):
        def body(client, service):
            host, port = read_endpoint(service.config.state_dir)
            assert (host, port) == (client.host, client.port)
            assert ServiceClient.from_state_dir(
                service.config.state_dir
            ).ready()

        run_with_server(tmp_path, body)

    def test_readyz_flips_during_drain(self, tmp_path):
        def body(client, service):
            assert client.ready()
            service.admission.draining = True
            assert not client.ready()

        run_with_server(tmp_path, body)


class TestSubmitRoute:
    def test_wait_returns_result_inline(self, tmp_path):
        def body(client, service):
            view = client.submit(REQUEST, wait=True)
            assert view["status"] == "done"
            assert view["document"]["kind"] == "flow_result"
            assert view["summary"]["benchmark"] == "fir8"

        run_with_server(tmp_path, body)

    def test_async_submit_then_poll(self, tmp_path):
        def body(client, service):
            view = client.submit(REQUEST)
            assert view["status"] in ("queued", "running", "done")
            final = client.wait_job(view["job_id"], timeout_s=120)
            assert final["status"] == "done"
            assert final["document"]["summary"]["benchmark"] == "fir8"

        run_with_server(tmp_path, body)

    def test_malformed_body_is_400(self, tmp_path):
        def body(client, service):
            status, payload, _ = client.request(
                "POST", "/v1/floorplan", {"kernel": "fir8", "bogus": 1}
            )
            assert status == 400
            assert "unknown request field" in payload["error"]

        run_with_server(tmp_path, body)

    def test_shed_is_503_with_retry_after(self, tmp_path):
        def body(client, service):
            with pytest.raises(AdmissionError) as info:
                client.submit(REQUEST)
            assert info.value.reason == "queue_full"
            assert info.value.retry_after_s > 0
            status, _, headers = client.request(
                "POST", "/v1/floorplan", REQUEST
            )
            assert status == 503
            assert "Retry-After" in headers

        run_with_server(
            tmp_path, body, admission=AdmissionConfig(max_queue=0)
        )

    def test_unknown_route_404(self, tmp_path):
        def body(client, service):
            status, _, _ = client.request("GET", "/v2/nothing")
            assert status == 404
            with pytest.raises(ServiceError, match="unknown job"):
                client.job("job-0-ffffffff")

        run_with_server(tmp_path, body)

    def test_wrong_method_405(self, tmp_path):
        def body(client, service):
            status, _, _ = client.request("GET", "/v1/floorplan")
            assert status == 405

        run_with_server(tmp_path, body)


class TestSlowClient:
    def test_stalled_request_times_out_408(self, tmp_path):
        def body(client, service):
            with fault_scope("service_slow_client@1"):
                status, payload, _ = client.request("GET", "/healthz")
            assert status == 408
            assert payload["type"] == "SlowClient"
            # The connection handler survives for the next client.
            assert client.health() == {"ok": True}

        run_with_server(tmp_path, body)
