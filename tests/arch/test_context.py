"""Floorplan (multi-context binding) tests."""

from __future__ import annotations

import pytest

from repro.arch import Fabric, Floorplan
from repro.errors import MappingError


@pytest.fixture
def fabric():
    return Fabric(4, 4)


@pytest.fixture
def floorplan(fabric):
    fp = Floorplan(fabric, num_contexts=2)
    fp.bind(0, 0, 0)
    fp.bind(1, 0, 5)
    fp.bind(2, 1, 0)
    return fp


class TestBinding:
    def test_basic_queries(self, floorplan):
        assert floorplan.num_ops == 3
        assert floorplan.ops_in_context(0) == [0, 1]
        assert floorplan.ops_in_context(1) == [2]
        assert floorplan.op_on(0, 5) == 1
        assert floorplan.op_on(1, 5) is None

    def test_slot_conflict_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.bind(9, 0, 0)

    def test_rebind_same_op_is_ok(self, floorplan):
        floorplan.bind(0, 0, 0)  # idempotent
        assert floorplan.pe_of[0] == 0

    def test_out_of_range_context(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.bind(9, 2, 0)

    def test_out_of_range_pe(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.bind(9, 0, 16)

    def test_rebind_moves_and_frees_slot(self, floorplan):
        floorplan.rebind(0, 9)
        assert floorplan.op_on(0, 0) is None
        assert floorplan.op_on(0, 9) == 0

    def test_rebind_unbound_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.rebind(42, 3)

    def test_same_pe_different_contexts_allowed(self, floorplan):
        # op 0 (ctx 0) and op 2 (ctx 1) share PE 0 legally.
        assert floorplan.pe_of[0] == floorplan.pe_of[2] == 0
        floorplan.validate()


class TestSwap:
    def test_swap_exchanges_pes(self, floorplan):
        floorplan.swap(0, 1)
        assert floorplan.pe_of[0] == 5
        assert floorplan.pe_of[1] == 0
        floorplan.validate()

    def test_swap_across_contexts_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.swap(0, 2)

    def test_swap_unbound_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.swap(0, 42)


class TestDerived:
    def test_usage_counts(self, floorplan):
        counts = floorplan.usage_counts()
        assert counts[0] == 2  # PE 0 used in both contexts
        assert counts[5] == 1
        assert sum(counts) == 3

    def test_utilization(self, floorplan):
        assert floorplan.utilization() == pytest.approx(3 / 32)

    def test_position_of(self, floorplan, fabric):
        assert floorplan.position_of(1) == (1, 1)
        with pytest.raises(MappingError):
            floorplan.position_of(42)

    def test_used_pes(self, floorplan):
        assert floorplan.used_pes(0) == {0, 5}
        assert floorplan.used_pes(1) == {0}

    def test_occupancy(self, floorplan):
        assert floorplan.occupancy(0) == {0: 0, 5: 1}


class TestCopyAndRebindSets:
    def test_copy_independent(self, floorplan):
        clone = floorplan.copy()
        clone.rebind(0, 10)
        assert floorplan.pe_of[0] == 0
        assert clone.pe_of[0] == 10

    def test_with_bindings(self, floorplan):
        remapped = floorplan.with_bindings({0: 12, 2: 3})
        assert remapped.pe_of == {0: 12, 1: 5, 2: 3}
        assert floorplan.pe_of[0] == 0  # source untouched
        assert remapped == remapped.copy()

    def test_with_bindings_conflict_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.with_bindings({0: 5})  # collides with op 1

    def test_with_bindings_unknown_op_rejected(self, floorplan):
        with pytest.raises(MappingError):
            floorplan.with_bindings({42: 1})

    def test_equality_semantics(self, floorplan):
        assert floorplan == floorplan.copy()
        other = floorplan.copy()
        other.rebind(0, 9)
        assert floorplan != other


class TestValidation:
    def test_validate_detects_mismatched_maps(self, fabric):
        fp = Floorplan(fabric, 1)
        fp.bind(0, 0, 0)
        fp.context_of[1] = 0  # corrupt directly
        with pytest.raises(MappingError):
            fp.validate()

    def test_constructor_with_maps(self, fabric):
        fp = Floorplan(
            fabric, 2, context_of={0: 0, 1: 1}, pe_of={0: 3, 1: 3}
        )
        assert fp.op_on(0, 3) == 0
        assert fp.op_on(1, 3) == 1

    def test_constructor_mismatched_maps_rejected(self, fabric):
        with pytest.raises(MappingError):
            Floorplan(fabric, 1, context_of={0: 0}, pe_of={})

    def test_nonpositive_contexts_rejected(self, fabric):
        with pytest.raises(MappingError):
            Floorplan(fabric, 0)
