"""Synthetic benchmark generator tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import UnitKind
from repro.benchgen import SyntheticSpec, build_benchmark, generate_design
from repro.errors import BenchmarkError


def spec(**kw):
    defaults = dict(
        name="t", num_contexts=4, fabric_dim=4, total_ops=30, seed=1
    )
    defaults.update(kw)
    return SyntheticSpec(**defaults)


class TestSpecValidation:
    def test_utilization(self):
        s = spec(total_ops=32)
        assert s.utilization == pytest.approx(0.5)
        assert s.capacity == 16

    def test_too_many_ops_rejected(self):
        with pytest.raises(BenchmarkError):
            spec(total_ops=100).validate()

    def test_too_few_ops_rejected(self):
        with pytest.raises(BenchmarkError):
            spec(total_ops=2).validate()

    def test_bad_dimensions_rejected(self):
        with pytest.raises(BenchmarkError):
            spec(fabric_dim=0).validate()


class TestGeneratedDesigns:
    def test_exact_op_count(self):
        design = generate_design(spec())
        assert design.num_ops == 30

    def test_contexts_within_capacity(self):
        design = generate_design(spec(total_ops=60))
        assert design.max_context_size() <= 16
        assert all(s >= 1 for s in design.context_sizes())

    def test_validates(self):
        generate_design(spec()).validate()

    def test_deterministic(self):
        a = generate_design(spec(seed=9))
        b = generate_design(spec(seed=9))
        assert [op.kind for op in a.ops.values()] == [
            op.kind for op in b.ops.values()
        ]
        assert a.compute_edges == b.compute_edges

    def test_seed_changes_design(self):
        a = generate_design(spec(seed=1))
        b = generate_design(spec(seed=2))
        assert (
            a.compute_edges != b.compute_edges
            or [op.kind for op in a.ops.values()]
            != [op.kind for op in b.ops.values()]
        )

    def test_unit_mix(self):
        design = generate_design(spec(total_ops=60, num_contexts=8))
        units = [op.unit for op in design.ops.values()]
        dmu_fraction = units.count(UnitKind.DMU) / len(units)
        assert 0.15 < dmu_fraction < 0.55

    def test_every_op_has_inputs(self):
        design = generate_design(spec())
        fed = {dst for _, dst in design.compute_edges}
        fed |= {dst for _, dst in design.input_edges}
        assert fed == set(design.ops)

    def test_outputs_exist(self):
        design = generate_design(spec(num_outputs=3))
        assert len(design.output_edges) >= 1

    def test_build_benchmark_returns_matching_fabric(self):
        design, fabric = build_benchmark(spec(fabric_dim=8, total_ops=100))
        assert fabric.num_pes == 64
        assert design.max_context_size() <= 64


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        contexts=st.integers(2, 8),
        dim=st.sampled_from([3, 4, 5]),
        seed=st.integers(0, 99),
        util=st.floats(0.2, 0.9),
    )
    def test_arbitrary_specs_are_legal(self, contexts, dim, seed, util):
        total = max(contexts, int(util * contexts * dim * dim))
        s = spec(
            num_contexts=contexts, fabric_dim=dim, total_ops=total, seed=seed
        )
        design = generate_design(s)
        design.validate()
        assert design.num_ops == total
        assert design.max_context_size() <= dim * dim
        # Edges always flow forward in time.
        for src, dst in design.compute_edges:
            assert design.ops[src].context <= design.ops[dst].context
