"""Power-model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import Fabric
from repro.errors import ThermalError
from repro.thermal import PowerModel


@pytest.fixture
def model():
    return PowerModel(active_w=0.1, leakage_w=0.01)


class TestPePower:
    def test_idle_is_leakage(self, model):
        assert model.pe_power(0.0) == pytest.approx(0.01)

    def test_full_duty(self, model):
        assert model.pe_power(1.0) == pytest.approx(0.11)

    def test_linear_in_duty(self, model):
        assert model.pe_power(0.5) == pytest.approx(0.06)

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ThermalError):
            model.pe_power(1.5)
        with pytest.raises(ThermalError):
            model.pe_power(-0.2)


class TestPowerMap:
    def test_vectorised(self, model):
        fabric = Fabric(2, 2)
        duties = np.array([0.0, 0.5, 1.0, 0.25])
        power = model.power_map(fabric, duties)
        np.testing.assert_allclose(power, [0.01, 0.06, 0.11, 0.035])

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ThermalError):
            model.power_map(Fabric(2, 2), np.zeros(5))

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ThermalError):
            model.power_map(Fabric(2, 2), np.array([0, 0, 0, 1.2]))

    def test_defaults_are_calibrated(self):
        default = PowerModel()
        assert 0 < default.leakage_w < default.active_w
