"""Admission control: bounded queue, tenant quotas, shed hints, drain."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError
from repro.service import AdmissionConfig, AdmissionController


def controller(**overrides):
    return AdmissionController(AdmissionConfig(**overrides))


class TestQueueBounds:
    def test_admits_until_full_then_sheds(self):
        ctrl = controller(max_queue=3, tenant_queue=3)
        for _ in range(3):
            ctrl.admit("a")
        with pytest.raises(AdmissionError) as info:
            ctrl.admit("a")
        assert info.value.reason == "queue_full"
        assert info.value.retry_after_s > 0

    def test_finish_frees_capacity(self):
        ctrl = controller(max_queue=1)
        ctrl.admit("a")
        with pytest.raises(AdmissionError):
            ctrl.admit("a")
        ctrl.finish("a")
        ctrl.admit("a")

    def test_tenant_cap_isolates_noisy_neighbour(self):
        ctrl = controller(max_queue=10, tenant_queue=2)
        ctrl.admit("noisy")
        ctrl.admit("noisy")
        with pytest.raises(AdmissionError) as info:
            ctrl.admit("noisy")
        assert info.value.reason == "tenant_queue_full"
        # Other tenants keep being admitted.
        ctrl.admit("quiet")

    def test_draining_sheds_everything(self):
        ctrl = controller()
        ctrl.draining = True
        with pytest.raises(AdmissionError) as info:
            ctrl.admit("a")
        assert info.value.reason == "draining"


class TestRetryHint:
    def test_grows_with_backlog(self):
        ctrl = controller(max_queue=10, tenant_queue=10, retry_after_s=1.0)
        empty_hint = ctrl.retry_hint()
        for _ in range(10):
            ctrl.admit("a")
        assert ctrl.retry_hint() > empty_hint
        assert empty_hint >= 1.0

    def test_error_carries_hint(self):
        ctrl = controller(max_queue=0)
        with pytest.raises(AdmissionError) as info:
            ctrl.admit("a")
        assert "retry after" in str(info.value)


class TestConcurrencyQuota:
    def test_acquire_bounded_per_tenant(self):
        ctrl = controller(tenant_concurrency=2)
        assert ctrl.acquire("a")
        assert ctrl.acquire("a")
        assert not ctrl.acquire("a")
        assert ctrl.acquire("b"), "quota is per tenant, not global"

    def test_release_restores_slot(self):
        ctrl = controller(tenant_concurrency=1)
        assert ctrl.acquire("a")
        ctrl.release("a")
        assert ctrl.acquire("a")

    def test_stats_shape(self):
        ctrl = controller()
        ctrl.admit("a")
        ctrl.acquire("a")
        stats = ctrl.stats()
        assert stats["depth"] == 1
        assert stats["running"] == 1
        assert stats["per_tenant"] == {"a": 1}
        assert stats["draining"] is False
