"""Minimal stdlib HTTP/1.1 front end for :class:`FloorplanService`.

One asyncio server, no framework: requests are small JSON documents, the
hard problems (admission, durability, crash isolation) live in the
service core, and a dependency-free server keeps the robustness story
auditable end to end.  Protocol surface:

* ``POST /v1/floorplan``  — submit a request document
  (:class:`~repro.service.request.FloorplanRequest` fields).  Returns
  ``202`` with the job view; ``?wait=1`` blocks until the job is
  terminal and returns ``200`` with the result document inline.
  Shedding returns ``503`` with a ``Retry-After`` header; malformed
  requests return ``400`` with a typed error.
* ``GET /v1/jobs/<id>``   — job status; ``?result=1`` includes the full
  artifact once the job is done.
* ``GET /healthz``        — liveness (always ``200`` while the process
  serves).
* ``GET /readyz``         — readiness: ``200`` while accepting,
  ``503`` once draining.
* ``GET /metricsz``       — ``repro.obs`` metrics snapshot plus service
  stats (queue depth, cache hit-rate, shed/retry/quarantine counts).

Clients that stall mid-request (``service_slow_client`` fault, or a real
stalled socket) are timed out and answered ``408`` instead of pinning a
connection handler forever.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

from repro.errors import AdmissionError, ServiceError
from repro.obs import counter, event, get_logger, registry
from repro.resilience.atomic import atomic_write_json
from repro.resilience.faults import should_inject
from repro.service.service import FloorplanService

_log = get_logger("service.http")

#: Largest request head+body the server will read.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Cap on ``?wait=1`` blocking time; slower jobs fall back to polling.
MAX_WAIT_S = 600.0


class _HttpError(Exception):
    """Internal: carry (status, document, headers) up to the writer."""

    def __init__(self, status: int, document: dict, headers: dict | None = None):
        super().__init__(document.get("error", ""))
        self.status = status
        self.document = document
        self.headers = headers or {}


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """Asyncio HTTP listener bound to one :class:`FloorplanService`."""

    def __init__(
        self,
        service: FloorplanService,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout_s: float = 10.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout_s = read_timeout_s
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (``port=0`` picks an ephemeral port) and
        publish ``<state>/endpoint.json`` for discovery."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.write_endpoint_file()
        _log.info("service listening on http://%s:%d", self.host, self.port)

    def write_endpoint_file(self) -> None:
        import os

        atomic_write_json(
            self.endpoint_path(),
            {"host": self.host, "port": self.port, "pid": os.getpid()},
        )

    def endpoint_path(self):
        import pathlib

        return pathlib.Path(self.service.config.state_dir) / "endpoint.json"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except asyncio.TimeoutError:
                counter("service.slow_clients").inc()
                event("service.slow_client")
                await self._respond(writer, 408, {
                    "error": "request not received in time", "type": "SlowClient",
                })
                return
            try:
                status, document, headers = await self._dispatch(
                    method, path, query, body
                )
            except _HttpError as exc:
                status, document, headers = exc.status, exc.document, exc.headers
            except AdmissionError as exc:
                status = 503
                document = {
                    "error": str(exc), "type": "AdmissionError",
                    "reason": exc.reason, "retry_after_s": exc.retry_after_s,
                }
                headers = {"Retry-After": f"{max(1, round(exc.retry_after_s))}"}
            except ServiceError as exc:
                status, headers = 400, {}
                document = {"error": str(exc), "type": type(exc).__name__}
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                _log.exception("unhandled error serving %s %s", method, path)
                status, headers = 500, {}
                document = {"error": str(exc), "type": type(exc).__name__}
            await self._respond(writer, status, document, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        if should_inject("service_slow_client"):
            # Simulate a client that stalls mid-request past the read
            # budget — same handling as a genuinely wedged socket.
            raise asyncio.TimeoutError
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=self.read_timeout_s
        )
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, {"error": "malformed request line"})
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, {"error": "request body too large"})
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.read_timeout_s
            )
        parsed = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        return method.upper(), parsed.path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: dict,
        headers: dict | None = None,
    ) -> None:
        payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()
        counter("service.http_responses").inc()
        counter(f"service.http_responses.{status}").inc()

    # -- routing ---------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, query: dict, body: bytes
    ) -> tuple[int, dict, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}, {}
        if path == "/readyz" and method == "GET":
            ready = not self.service.admission.draining
            return (200 if ready else 503), {
                "ready": ready,
                "draining": self.service.admission.draining,
            }, {}
        if path == "/metricsz" and method == "GET":
            return 200, {
                "metrics": registry().snapshot(),
                "service": self.service.stats(),
            }, {}
        if path == "/v1/floorplan":
            if method != "POST":
                raise _HttpError(405, {"error": "POST required"})
            return await self._submit(query, body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, {"error": "GET required"})
            return self._job_view(path.removeprefix("/v1/jobs/"), query)
        raise _HttpError(404, {"error": f"no route {method} {path}"})

    async def _submit(self, query: dict, body: bytes) -> tuple[int, dict, dict]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(
                400, {"error": f"request body is not JSON: {exc}"}
            ) from exc
        if not isinstance(document, dict):
            raise _HttpError(400, {"error": "request body must be an object"})
        job = await self.service.submit(document)
        if query.get("wait") in ("1", "true", "yes"):
            try:
                await self.service.wait(job.job_id, timeout=MAX_WAIT_S)
            except asyncio.TimeoutError:
                return 202, job.to_dict(), {}
            return 200, job.to_dict(include_document=True), {}
        status = 200 if job.terminal else 202
        return status, job.to_dict(include_document=job.terminal), {}

    def _job_view(self, job_id: str, query: dict) -> tuple[int, dict, dict]:
        try:
            job = self.service.job(job_id)
        except ServiceError as exc:
            raise _HttpError(404, {"error": str(exc)}) from exc
        include = query.get("result") in ("1", "true", "yes") and job.terminal
        return 200, job.to_dict(include_document=include), {}
