"""Typed error paths: budget infeasibility, solver infeasibility, fallbacks."""

from __future__ import annotations

import dataclasses
import math

import pytest

import repro.core.algorithm1 as algorithm1_module
import repro.core.flow as flow_module
from repro.arch.checks import check_design_fits
from repro.core.algorithm1 import Algorithm1Config, run_algorithm1
from repro.core.flow import AgingAwareFlow, FlowConfig
from repro.core.remap import RemapConfig, build_remap_model, default_candidates
from repro.core.rotation import FrozenPlan
from repro.errors import (
    BudgetInfeasibleError,
    InfeasibleError,
    MappingError,
)
from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.model import Model
from repro.milp.scipy_backend import ScipyBackend
from repro.milp.status import SolveStatus


class TestBudgetInfeasible:
    def test_frozen_stress_above_target_raises(
        self, synth_design, fabric4, synth_floorplan
    ):
        # Freeze one op, then demand a stress budget below what that op
        # alone deposits: the model builder must refuse with a typed error
        # naming the PE instead of emitting an unsatisfiable constraint.
        op_id = next(iter(synth_design.ops))
        frozen = FrozenPlan(
            positions={op_id: synth_floorplan.pe_of[op_id]},
            orientation_of_context={},
        )
        candidates = default_candidates(
            synth_design,
            synth_floorplan,
            frozen,
            fabric4,
            RemapConfig().resolved_window(fabric4),
        )
        with pytest.raises(BudgetInfeasibleError, match="exceeds ST_target"):
            build_remap_model(
                synth_design,
                fabric4,
                frozen,
                candidates,
                monitored_paths=(),
                cpd_ns=math.inf,
                st_target_ns=synth_design.ops[op_id].stress_ns / 2.0,
            )

    def test_algorithm1_relaxes_through_budget_infeasibility(
        self, synth_design, fabric4, synth_floorplan, monkeypatch
    ):
        # If every iteration's frozen budget is infeasible, the relax loop
        # must walk ST_target up, exhaust, and fall back to the original
        # floorplan — never crash.
        def always_infeasible(*args, **kwargs):
            raise BudgetInfeasibleError("frozen stress exceeds ST_target")

        monkeypatch.setattr(
            algorithm1_module, "build_remap_model", always_infeasible
        )
        result = run_algorithm1(
            synth_design,
            fabric4,
            synth_floorplan,
            Algorithm1Config(max_iterations=3),
        )
        assert result.fell_back
        assert result.degradation == "original"
        assert result.floorplan.pe_of == synth_floorplan.pe_of
        assert any(
            entry.get("result") == "frozen_budget_infeasible"
            for entry in result.stats["iterations"]
        )


@pytest.mark.parametrize(
    "backend_factory", [ScipyBackend, BranchBoundBackend],
    ids=["highs", "branch_bound"],
)
class TestInfeasibleFromBackends:
    def _contradictory_model(self) -> Model:
        model = Model("contradiction")
        x = model.add_binary("x")
        model.add_constraint(x >= 1)
        model.add_constraint(x <= 0)
        model.set_objective(x)
        return model

    def test_status_is_infeasible(self, backend_factory):
        solution = self._contradictory_model().solve(backend_factory())
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution.status.has_solution

    def test_require_raises_typed_error(self, backend_factory):
        solution = self._contradictory_model().solve(backend_factory())
        with pytest.raises(InfeasibleError, match="proven infeasible"):
            solution.require()


class TestFlowMttfFallback:
    def test_lost_lifetime_keeps_original_floorplan(
        self, synth_design, fabric4, monkeypatch
    ):
        # Force the Phase-2 verdict "re-map lost lifetime": the flow must
        # keep the original floorplan and report the fallback.
        monkeypatch.setattr(
            flow_module, "mttf_increase", lambda original, remapped: 0.5
        )
        flow = AgingAwareFlow(
            FlowConfig(
                algorithm1=Algorithm1Config(
                    max_iterations=3, remap=RemapConfig(time_limit_s=10.0)
                )
            )
        )
        result = flow.run(synth_design, fabric4)
        assert result.remap.fell_back
        assert result.remap.degradation == "original"
        assert result.remap.floorplan.pe_of == result.original.floorplan.pe_of
        assert result.summary()["fell_back"] is True
        assert result.summary()["degradation"] == "original"


class TestDesignFitsBoundary:
    def test_valid_pair_passes(self, synth_design, fabric4):
        check_design_fits(synth_design, fabric4)  # must not raise

    def test_zero_contexts_rejected(self, synth_design, fabric4):
        broken = dataclasses.replace(synth_design, num_contexts=0)
        with pytest.raises(MappingError, match="0 contexts"):
            check_design_fits(broken, fabric4)

    def test_out_of_range_context_rejected(self, synth_design, fabric4):
        op_id = next(iter(synth_design.ops))
        ops = dict(synth_design.ops)
        ops[op_id] = dataclasses.replace(
            ops[op_id], context=synth_design.num_contexts
        )
        broken = dataclasses.replace(synth_design, ops=ops)
        with pytest.raises(MappingError, match=f"op {op_id}"):
            check_design_fits(broken, fabric4)

    def test_overfull_context_rejected(self, synth_design, fabric4):
        ops = {
            op_id: dataclasses.replace(info, context=0)
            for op_id, info in synth_design.ops.items()
        }
        assert len(ops) > fabric4.num_pes
        broken = dataclasses.replace(synth_design, ops=ops)
        with pytest.raises(MappingError, match="has only"):
            check_design_fits(broken, fabric4)

    def test_dangling_edge_rejected(self, synth_design, fabric4):
        op_id = next(iter(synth_design.ops))
        broken = dataclasses.replace(
            synth_design, compute_edges=[(op_id, -1)]
        )
        with pytest.raises(MappingError, match="unknown op -1"):
            check_design_fits(broken, fabric4)

    def test_flow_run_rejects_unplaceable_design(
        self, synth_design, fabric4
    ):
        # The boundary check fires before any expensive phase: an
        # unplaceable design raises immediately at AgingAwareFlow.run.
        ops = {
            op_id: dataclasses.replace(info, context=0)
            for op_id, info in synth_design.ops.items()
        }
        broken = dataclasses.replace(synth_design, ops=ops)
        flow = AgingAwareFlow(FlowConfig())
        with pytest.raises(MappingError, match="needs"):
            flow.run(broken, fabric4)
