"""Scheduler tests: precedence, capacity, chaining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import OpKind, op_delay_ns
from repro.errors import SchedulingError
from repro.hls import DataflowGraph, asap_cycles, schedule_dfg
from repro.units import CLOCK_PERIOD_NS


def chain_graph(length, kind=OpKind.MUL):
    """A linear dependency chain of `length` compute ops."""
    g = DataflowGraph("chain")
    prev = g.add_input("a")
    zero = g.add_const(1)
    for _ in range(length):
        prev = g.add_node(kind, (prev, zero))
    g.add_output(prev, "y")
    return g


def wide_graph(width):
    """`width` independent ops feeding one reduction tree level."""
    g = DataflowGraph("wide")
    a = g.add_input("a")
    b = g.add_input("b")
    ops = [g.add_node(OpKind.ADD, (a, b)) for _ in range(width)]
    for op in ops:
        g.add_output(op, f"y{op}")
    return g


class TestAsap:
    def test_dmu_chain_splits_cycles(self):
        """Two chained MULs (3.14 ns each) cannot share a 4 ns budget."""
        g = chain_graph(2)
        cycles = asap_cycles(g, chain_limit_ns=0.8 * CLOCK_PERIOD_NS)
        values = sorted(cycles.values())
        assert values == [0, 1]

    def test_alu_ops_chain_in_one_cycle(self):
        g = chain_graph(3, OpKind.ADD)  # 3 x 0.87 = 2.61 < 4 ns
        cycles = asap_cycles(g, chain_limit_ns=0.8 * CLOCK_PERIOD_NS)
        assert set(cycles.values()) == {0}

    def test_oversized_op_rejected(self):
        g = chain_graph(1)
        with pytest.raises(SchedulingError):
            asap_cycles(g, chain_limit_ns=1.0)  # MUL is 3.14 ns


class TestResourceConstraints:
    def test_capacity_respected(self):
        g = wide_graph(10)
        schedule = schedule_dfg(g, capacity=4)
        assert schedule.max_ops_per_cycle() <= 4
        assert schedule.num_contexts >= 3

    def test_unconstrained_single_cycle(self):
        g = wide_graph(10)
        schedule = schedule_dfg(g, capacity=16)
        assert schedule.num_contexts == 1

    def test_capacity_one(self):
        g = wide_graph(5)
        schedule = schedule_dfg(g, capacity=1)
        assert schedule.num_contexts == 5

    def test_invalid_capacity(self):
        with pytest.raises(SchedulingError):
            schedule_dfg(wide_graph(2), capacity=0)

    def test_min_contexts_padding(self):
        g = wide_graph(2)
        schedule = schedule_dfg(g, capacity=16, min_contexts=6)
        assert schedule.num_contexts == 6


class TestValidation:
    def test_validate_catches_backward_dependency(self):
        g = chain_graph(2)
        schedule = schedule_dfg(g, capacity=16)
        # Corrupt: move the first op after its consumer.
        first = min(schedule.cycle_of)
        schedule.cycle_of[first] = 99
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_validate_catches_capacity(self):
        g = wide_graph(8)
        schedule = schedule_dfg(g, capacity=8)
        with pytest.raises(SchedulingError):
            schedule.validate(capacity=2)

    def test_ops_in_cycle(self):
        g = wide_graph(4)
        schedule = schedule_dfg(g, capacity=2)
        assert len(schedule.ops_in_cycle(0)) == 2


@st.composite
def random_dag(draw):
    """A random small DAG of compute ops over two inputs."""
    g = DataflowGraph("rand")
    nodes = [g.add_input("a"), g.add_input("b")]
    num_ops = draw(st.integers(3, 20))
    for _ in range(num_ops):
        kind = draw(st.sampled_from([OpKind.ADD, OpKind.MUL, OpKind.XOR]))
        left = draw(st.sampled_from(nodes))
        right = draw(st.sampled_from(nodes))
        nodes.append(g.add_node(kind, (left, right)))
    g.add_output(nodes[-1], "y")
    return g


class TestScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(g=random_dag(), capacity=st.integers(2, 8))
    def test_schedule_always_valid(self, g, capacity):
        schedule = schedule_dfg(g, capacity=capacity)
        schedule.validate(capacity)
        # Every compute op is scheduled exactly once.
        assert set(schedule.cycle_of) == {
            n.node_id for n in g.compute_nodes()
        }

    @settings(max_examples=30, deadline=None)
    @given(g=random_dag())
    def test_chain_delay_within_limit(self, g):
        """Accumulated PE delay of any same-cycle chain fits the budget."""
        schedule = schedule_dfg(g, capacity=8)
        limit = schedule.chain_limit_ns
        finish: dict[int, float] = {}
        for nid in g.topological_order():
            node = g.node(nid)
            if not node.is_compute:
                continue
            cycle = schedule.cycle_of[nid]
            start = 0.0
            for pred in node.inputs:
                pred_node = g.node(pred)
                if pred_node.is_compute and schedule.cycle_of[pred] == cycle:
                    start = max(start, finish[pred])
            finish[nid] = start + op_delay_ns(node.kind, node.width)
            assert finish[nid] <= limit + 1e-9
