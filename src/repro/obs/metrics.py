"""Process-local metrics: counters, gauges and histograms.

The registry is the always-on half of the observability layer: instruments
are plain attribute updates (no locks on the hot path, no I/O), so solver
internals can count nodes, relaxations and accepted moves unconditionally.
Sinks read a :meth:`MetricsRegistry.snapshot` at the end of a run.

Naming convention (see ``docs/observability.md``): dotted lowercase paths,
``<subsystem>.<thing>[.<aspect>]`` — e.g. ``milp.bb.nodes_explored``,
``algorithm1.st_target_relaxations``, ``rounding.vars_fixed``,
``anneal.moves_accepted``, ``thermal.grid_solves``.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (last-write-wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean).

    Full quantile sketches are overkill for solver telemetry; the mean and
    extremes are what the bench tables consume.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Creation is lock-protected (cheap, happens once per name); updates go
    straight to the instrument.  A name is permanently bound to its first
    kind — asking for ``counter("x")`` after ``gauge("x")`` is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls(name))
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """``{name: {kind, value | count/sum/...}}`` sorted by name."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._instruments.clear()


#: The process-default registry the module-level helpers write to.
_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return _default


def counter(name: str) -> Counter:
    """Default-registry counter, e.g. ``counter("milp.bb.nodes_explored")``."""
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    """Default-registry gauge."""
    return _default.gauge(name)


def histogram(name: str) -> Histogram:
    """Default-registry histogram."""
    return _default.histogram(name)
