"""Solution/SolveStatus tests."""

from __future__ import annotations

import math

import pytest

from repro.errors import ModelError
from repro.milp import Solution, SolveStatus, Variable


class TestSolveStatus:
    def test_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.ERROR.has_solution


class TestSolution:
    @pytest.fixture
    def solved(self):
        x = Variable("x")
        return x, Solution(
            status=SolveStatus.OPTIMAL, objective=1.0, values={x: 0.9999999}
        )

    def test_getitem(self, solved):
        x, solution = solved
        assert solution[x] == pytest.approx(1.0, abs=1e-5)

    def test_getitem_missing_variable(self, solved):
        _, solution = solved
        with pytest.raises(ModelError):
            solution[Variable("other")]

    def test_getitem_without_solution(self):
        infeasible = Solution(status=SolveStatus.INFEASIBLE)
        with pytest.raises(ModelError):
            infeasible[Variable("x")]
        assert math.isnan(infeasible.objective)

    def test_value_with_default(self, solved):
        x, solution = solved
        assert solution.value(Variable("ghost"), 0.0) == 0.0
        assert solution.value(x) == pytest.approx(1.0, abs=1e-5)
        with pytest.raises(ModelError):
            solution.value(Variable("ghost"))

    def test_rounded_snaps_near_integers(self, solved):
        x, solution = solved
        assert solution.rounded(x) == 1

    def test_rounded_rejects_fractional(self):
        x = Variable("x")
        solution = Solution(
            status=SolveStatus.OPTIMAL, objective=0.0, values={x: 0.5}
        )
        with pytest.raises(ModelError):
            solution.rounded(x)
