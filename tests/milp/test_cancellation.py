"""Cooperative cancellation inside the MILP backends.

The branch-and-bound backend must honour the race's cancel token at
*every* node expansion — a deep, heavily-tied tree (the regression case)
would otherwise run for its full node budget after the race is already
decided.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.milp import BranchBoundBackend, Model, SolveStatus, linear_sum
from repro.portfolio import CancelToken, cancel_scope


def deep_tree_model(n: int = 24) -> Model:
    """A knapsack engineered for a deliberately deep, tie-heavy tree.

    The capacity ``3*(n//2) + 1`` is never a multiple of the uniform
    weight 3, so every LP relaxation carries a 1/3-fractional variable
    and its bound sits strictly below the best integral value — pruning
    never engages, and equal objective coefficients make every branching
    order a tie.  Uncancelled branch-and-bound grinds through thousands
    of nodes on this.
    """
    model = Model("deep")
    xs = [model.add_binary(f"x{i}") for i in range(n)]
    model.add_constraint(3 * linear_sum(xs) <= 3 * (n // 2) + 1)
    model.set_objective(-linear_sum(xs))
    return model


class TestBranchBoundCancellation:
    def test_pre_cancelled_token_stops_at_first_node(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            solution = BranchBoundBackend().solve(deep_tree_model())
        assert solution.stats.limit_reason == "cancelled"
        assert solution.stats.nodes == 0
        # No incumbent and nothing proven: an honest ERROR, not a claim.
        assert solution.status is SolveStatus.ERROR

    def test_mid_solve_cancel_returns_promptly(self):
        """Cancel from another thread while the tree is being explored."""
        token = CancelToken()
        backend = BranchBoundBackend(max_nodes=2_000_000)
        done = {}

        def solve():
            with cancel_scope(token):
                done["solution"] = backend.solve(deep_tree_model(26))

        thread = threading.Thread(target=solve)
        thread.start()
        time.sleep(0.1)
        token.cancel()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "cancelled solve failed to wind down"
        solution = done["solution"]
        assert solution.stats.limit_reason == "cancelled"
        # Winding down keeps the loser's partial stats for the race record.
        assert solution.stats.nodes >= 1

    def test_uncancelled_solve_is_unaffected(self):
        solution = BranchBoundBackend().solve(deep_tree_model(8))
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats.limit_reason != "cancelled"
        assert solution.objective == pytest.approx(-4.0)


class TestScipyCancellation:
    def test_cancelled_token_short_circuits_entry(self):
        pytest.importorskip("scipy")
        from repro.milp import ScipyBackend

        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            solution = ScipyBackend().solve(deep_tree_model(8))
        assert solution.status is SolveStatus.ERROR
        assert solution.stats.limit_reason == "cancelled"
