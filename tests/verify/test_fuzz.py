"""Property/fuzz tests: every seeded perturbation of a certified-good
floorplan must be rejected with the right violation class, and the
unperturbed result must certify cleanly."""

from __future__ import annotations

import copy
import random

import pytest

from repro.core import Algorithm1Config, RemapConfig, run_algorithm1
from repro.verify import (
    ABS_TOL,
    KIND_FROZEN,
    KIND_SCHEDULE,
    KIND_SLOT,
    KIND_STRESS,
    KIND_UNASSIGNED,
    certify_floorplan,
)

pytest.importorskip("scipy")


@pytest.fixture(scope="module")
def certified(synth_design, synth_floorplan, fabric4):
    result = run_algorithm1(
        synth_design,
        fabric4,
        synth_floorplan,
        Algorithm1Config(mode="rotate", remap=RemapConfig(time_limit_s=30)),
    )
    assert not result.fell_back
    assert result.certified is True
    return result


def _max_stress(design, floorplan) -> float:
    by_pe: dict[int, float] = {}
    for op_id, op in design.ops.items():
        pe = floorplan.pe_of[op_id]
        by_pe[pe] = by_pe.get(pe, 0.0) + op.stress_ns
    return max(by_pe.values())


class TestPerturbations:
    def test_unperturbed_certifies(self, certified, synth_design):
        cert = certify_floorplan(
            synth_design,
            certified.floorplan,
            frozen_positions=certified.frozen.positions,
            st_target_ns=certified.st_target_ns + ABS_TOL,
            baseline_cpd_ns=certified.original_cpd_ns + 1e-6,
        )
        assert cert.ok, [v.detail for v in cert.violations]

    def test_unassigned_op_rejected(self, certified, synth_design):
        fp = copy.deepcopy(certified.floorplan)
        victim = sorted(fp.pe_of)[0]
        del fp.pe_of[victim]
        cert = certify_floorplan(synth_design, fp)
        assert KIND_UNASSIGNED in cert.kinds()

    def test_stress_over_budget_rejected(self, certified, synth_design):
        tight = _max_stress(synth_design, certified.floorplan) * 0.9
        cert = certify_floorplan(
            synth_design, certified.floorplan, st_target_ns=tight
        )
        assert KIND_STRESS in cert.kinds()

    def test_moved_frozen_op_rejected(self, certified, synth_design, fabric4):
        op_id = sorted(certified.floorplan.pe_of)[0]
        wrong_pe = (
            certified.floorplan.pe_of[op_id] + 1
        ) % fabric4.num_pes
        cert = certify_floorplan(
            synth_design,
            certified.floorplan,
            frozen_positions={op_id: wrong_pe},
        )
        assert KIND_FROZEN in cert.kinds()

    def test_slot_conflict_rejected(self, certified, synth_design):
        fp = copy.deepcopy(certified.floorplan)
        by_context: dict[int, list[int]] = {}
        for op_id, op in synth_design.ops.items():
            by_context.setdefault(op.context, []).append(op_id)
        pair = next(ops for ops in by_context.values() if len(ops) >= 2)
        fp.pe_of[pair[1]] = fp.pe_of[pair[0]]
        cert = certify_floorplan(synth_design, fp)
        assert KIND_SLOT in cert.kinds()

    def test_changed_schedule_rejected(self, certified, synth_design):
        fp = copy.deepcopy(certified.floorplan)
        op_id = sorted(fp.context_of)[0]
        fp.context_of[op_id] = fp.context_of[op_id] + 1
        cert = certify_floorplan(synth_design, fp)
        assert KIND_SCHEDULE in cert.kinds()


class TestRandomFuzz:
    def test_seeded_random_perturbations_all_rejected(
        self, certified, synth_design, fabric4
    ):
        """Twenty seeded perturbations, one invariant broken each — the
        certifier must flag the broken invariant's class every time."""
        rng = random.Random(20260806)
        op_ids = sorted(certified.floorplan.pe_of)
        by_context: dict[int, list[int]] = {}
        for op_id, op in synth_design.ops.items():
            by_context.setdefault(op.context, []).append(op_id)
        crowded = [ops for ops in by_context.values() if len(ops) >= 2]
        for _ in range(20):
            fp = copy.deepcopy(certified.floorplan)
            kwargs = dict(
                frozen_positions=certified.frozen.positions,
                st_target_ns=certified.st_target_ns + ABS_TOL,
                baseline_cpd_ns=certified.original_cpd_ns + 1e-6,
            )
            mutation = rng.choice(
                ("unassign", "stress", "frozen", "slot", "schedule")
            )
            if mutation == "unassign":
                del fp.pe_of[rng.choice(op_ids)]
                expected = KIND_UNASSIGNED
            elif mutation == "stress":
                kwargs["st_target_ns"] = (
                    _max_stress(synth_design, fp) * rng.uniform(0.1, 0.9)
                )
                expected = KIND_STRESS
            elif mutation == "frozen":
                op_id = rng.choice(op_ids)
                offset = rng.randrange(1, fabric4.num_pes)
                kwargs["frozen_positions"] = {
                    op_id: (fp.pe_of[op_id] + offset) % fabric4.num_pes
                }
                expected = KIND_FROZEN
            elif mutation == "slot":
                ops = rng.choice(crowded)
                a, b = rng.sample(ops, 2)
                fp.pe_of[b] = fp.pe_of[a]
                expected = KIND_SLOT
            else:
                op_id = rng.choice(op_ids)
                fp.context_of[op_id] = fp.context_of[op_id] + rng.randrange(
                    1, 4
                )
                expected = KIND_SCHEDULE
            cert = certify_floorplan(synth_design, fp, **kwargs)
            assert not cert.ok, mutation
            assert expected in cert.kinds(), (mutation, cert.to_dict())
