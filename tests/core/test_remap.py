"""Re-mapping model assembly and solve-strategy tests."""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.arch import Fabric
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    frozen_stress_by_pe,
    solve_remap,
    solve_remap_sequential,
)
from repro.errors import ModelError
from repro.timing import analyze, filter_paths


def empty_frozen():
    return FrozenPlan(positions={}, orientation_of_context={})


class TestCandidates:
    def test_full_window_gives_all_pes(self, synth_design, synth_floorplan, fabric4):
        candidates = default_candidates(
            synth_design, synth_floorplan, empty_frozen(), fabric4, None
        )
        assert all(len(c) == 16 for c in candidates.values())
        assert set(candidates) == set(synth_design.ops)

    def test_window_limits_but_includes_origin(
        self, synth_design, synth_floorplan, fabric4
    ):
        candidates = default_candidates(
            synth_design, synth_floorplan, empty_frozen(), fabric4, 6
        )
        for op, cands in candidates.items():
            assert synth_floorplan.pe_of[op] in cands
            assert len(cands) <= 16

    def test_frozen_ops_excluded(self, synth_design, synth_floorplan, fabric4):
        some_op = next(iter(synth_design.ops))
        frozen = FrozenPlan(
            positions={some_op: synth_floorplan.pe_of[some_op]},
            orientation_of_context={},
        )
        candidates = default_candidates(
            synth_design, synth_floorplan, frozen, fabric4, None
        )
        assert some_op not in candidates
        context = synth_design.ops[some_op].context
        blocked_pe = synth_floorplan.pe_of[some_op]
        for op, cands in candidates.items():
            if synth_design.ops[op].context == context:
                assert blocked_pe not in cands

    def test_frozen_stress_by_pe(self, synth_design):
        op_a, op_b = sorted(synth_design.ops)[:2]
        frozen = FrozenPlan(
            positions={op_a: 3, op_b: 3}, orientation_of_context={}
        )
        stress = frozen_stress_by_pe(synth_design, frozen)
        expected = (
            synth_design.ops[op_a].stress_ns + synth_design.ops[op_b].stress_ns
        )
        assert stress[3] == pytest.approx(expected)


@pytest.fixture
def remap_inputs(synth_design, synth_floorplan, fabric4):
    report = analyze(synth_design, synth_floorplan)
    stress = compute_stress_map(synth_design, synth_floorplan)
    monitored = filter_paths(synth_design, synth_floorplan).non_critical
    candidates = default_candidates(
        synth_design, synth_floorplan, empty_frozen(), fabric4, None
    )
    return {
        "design": synth_design,
        "fabric": fabric4,
        "floorplan": synth_floorplan,
        "cpd": report.cpd_ns,
        "stress": stress,
        "monitored": monitored,
        "candidates": candidates,
    }


class TestBuildModel:
    def test_model_dimensions(self, remap_inputs):
        model, variables, stats = build_remap_model(
            remap_inputs["design"],
            remap_inputs["fabric"],
            empty_frozen(),
            remap_inputs["candidates"],
            remap_inputs["monitored"],
            remap_inputs["cpd"],
            st_target_ns=remap_inputs["stress"].max_accumulated_ns,
        )
        ops = remap_inputs["design"].num_ops
        assert stats["binaries"] == ops * 16
        assert len(variables.assign) == ops
        assert model.has_objective()  # wirelength default

    def test_null_objective_mode(self, remap_inputs):
        model, _, _ = build_remap_model(
            remap_inputs["design"],
            remap_inputs["fabric"],
            empty_frozen(),
            remap_inputs["candidates"],
            remap_inputs["monitored"],
            remap_inputs["cpd"],
            st_target_ns=remap_inputs["stress"].max_accumulated_ns,
            objective="null",
        )
        assert not model.has_objective()

    def test_unknown_objective_rejected(self, remap_inputs):
        with pytest.raises(ModelError):
            build_remap_model(
                remap_inputs["design"],
                remap_inputs["fabric"],
                empty_frozen(),
                remap_inputs["candidates"],
                remap_inputs["monitored"],
                remap_inputs["cpd"],
                st_target_ns=10.0,
                objective="banana",
            )


class TestSolveStrategies:
    def run(self, remap_inputs, st_target, **config_kw):
        config = RemapConfig(time_limit_s=30, **config_kw)
        model, variables, _ = build_remap_model(
            remap_inputs["design"],
            remap_inputs["fabric"],
            empty_frozen(),
            remap_inputs["candidates"],
            remap_inputs["monitored"],
            remap_inputs["cpd"],
            st_target_ns=st_target,
            objective=config.objective,
        )
        return solve_remap(model, variables, config)

    def test_two_step_feasible_at_original_max(self, remap_inputs):
        outcome = self.run(
            remap_inputs, remap_inputs["stress"].max_accumulated_ns
        )
        assert outcome.feasible
        assert set(outcome.assignment) == set(remap_inputs["design"].ops)
        assert outcome.stats["strategy"] == "two-step"

    def test_infeasible_below_mean(self, remap_inputs):
        outcome = self.run(
            remap_inputs, remap_inputs["stress"].mean_accumulated_ns * 0.5
        )
        assert not outcome.feasible

    def test_monolithic_agrees_on_feasibility(self, remap_inputs):
        outcome = self.run(
            remap_inputs,
            remap_inputs["stress"].max_accumulated_ns,
            strategy="monolithic",
        )
        assert outcome.feasible
        assert outcome.stats["strategy"] == "monolithic"

    def test_randomized_rounding_strategy(self, remap_inputs):
        """Randomized rounding runs, but may pre-map itself into a corner
        (two same-context ops rounded onto one PE) — exactly the weakness
        the paper reports ("did not work as well")."""
        outcome = self.run(
            remap_inputs,
            remap_inputs["stress"].max_accumulated_ns,
            rounding="randomized",
        )
        assert outcome.stats["rounding"] == "randomized"
        if outcome.feasible:
            assert set(outcome.assignment) == set(remap_inputs["design"].ops)

    def test_unknown_strategy_rejected(self, remap_inputs):
        with pytest.raises(ModelError):
            self.run(remap_inputs, 10.0, strategy="quantum")

    def test_outcome_floorplan_respects_budget(self, remap_inputs):
        target = remap_inputs["stress"].max_accumulated_ns * 0.9
        outcome = self.run(remap_inputs, target)
        if outcome.feasible:
            floorplan = outcome.floorplan(
                remap_inputs["floorplan"], empty_frozen()
            )
            new_stress = compute_stress_map(remap_inputs["design"], floorplan)
            assert new_stress.max_accumulated_ns <= target + 1e-6

    def test_infeasible_outcome_has_no_floorplan(self, remap_inputs):
        outcome = self.run(remap_inputs, 0.01)
        with pytest.raises(ModelError):
            outcome.floorplan(remap_inputs["floorplan"], empty_frozen())


class TestSequentialStrategy:
    def test_sequential_feasible_and_legal(self, remap_inputs):
        config = RemapConfig(strategy="sequential", time_limit_s=30)
        outcome = solve_remap_sequential(
            remap_inputs["design"],
            remap_inputs["fabric"],
            empty_frozen(),
            remap_inputs["candidates"],
            remap_inputs["monitored"],
            remap_inputs["cpd"],
            remap_inputs["stress"].max_accumulated_ns,
            config,
        )
        assert outcome.feasible
        floorplan = outcome.floorplan(remap_inputs["floorplan"], empty_frozen())
        floorplan.validate()
        new_stress = compute_stress_map(remap_inputs["design"], floorplan)
        assert (
            new_stress.max_accumulated_ns
            <= remap_inputs["stress"].max_accumulated_ns + 1e-6
        )

    def test_sequential_reports_per_context(self, remap_inputs):
        config = RemapConfig(strategy="sequential", time_limit_s=30)
        outcome = solve_remap_sequential(
            remap_inputs["design"],
            remap_inputs["fabric"],
            empty_frozen(),
            remap_inputs["candidates"],
            remap_inputs["monitored"],
            remap_inputs["cpd"],
            remap_inputs["stress"].max_accumulated_ns,
            config,
        )
        assert len(outcome.stats["contexts"]) >= 1
