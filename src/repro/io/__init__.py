"""Artefact I/O: versioned JSON for designs, floorplans and flow results."""

from repro.io.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    design_from_dict,
    design_to_dict,
    floorplan_from_dict,
    floorplan_to_dict,
    flow_summary_to_dict,
    load_design,
    load_floorplan,
    load_json,
    save_design,
    save_floorplan,
    save_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "design_from_dict",
    "design_to_dict",
    "floorplan_from_dict",
    "floorplan_to_dict",
    "flow_summary_to_dict",
    "load_design",
    "load_floorplan",
    "load_json",
    "save_design",
    "save_floorplan",
    "save_json",
]
