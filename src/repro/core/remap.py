"""Assembly and solution of the re-mapping MILP (paper Eq. 3).

``build_remap_model`` assembles the formulation for a given ``ST_target``;
``solve_remap`` runs one of three strategies:

* ``"two-step"`` (the paper's method, default): solve the LP relaxation,
  pre-map every assignment whose LP value exceeds 0.95 (or randomized
  rounding, for the ablation), then solve the residual ILP;
* ``"monolithic"``: hand the full binary model to the solver directly —
  the primary formulation of Section V-A that the paper found intractable
  at scale (kept for the ablation benchmark);
* ``"sequential"``: contexts solved one at a time against a running stress
  budget — a decomposition ablation that is faster but cannot coordinate
  across contexts.

Candidate windowing
-------------------
On large fabrics a dense op x PE variable grid is intractable (the paper's
own motivation for the two-step method).  ``default_candidates`` can limit
each op to the ``window`` nearest PEs around its original location plus a
deterministic spread sample across the fabric (so stress can still be
exported to far-away idle PEs).  ``window=None`` (the default for fabrics
up to 64 PEs) gives every op every PE, exactly as in Eq. (3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.core.constraints import (
    RemapVariables,
    add_assignment_variables,
    add_exclusivity_constraints,
    add_path_constraints,
    add_stress_constraints,
    add_wirelength_objective,
    build_coordinates,
    collect_endpoints,
)
from repro.core.rotation import FrozenPlan
from repro.errors import BudgetInfeasibleError, ModelError
from repro.hls.allocate import MappedDesign
from repro.milp.model import Model
from repro.milp.rounding import (
    extract_assignment,
    randomized_round,
    threshold_fix,
)
from repro.milp.scipy_backend import ScipyBackend
from repro.milp.status import SolveStatus
from repro.obs import counter, gauge, get_logger, span
from repro.timing.kpaths import MonitoredPath

#: Fabric size (PEs) up to which every op gets every PE as a candidate.
FULL_CANDIDATE_LIMIT = 64

_log = get_logger("core.remap")


@dataclass
class RemapConfig:
    """Solution-strategy knobs for one re-mapping solve."""

    strategy: str = "two-step"  # "two-step" | "monolithic" | "sequential"
    rounding: str = "threshold"  # "threshold" | "randomized"
    #: "wirelength" minimises total wire length among feasible floorplans
    #: (robust default); "null" is the paper-pure feasibility objective.
    objective: str = "wirelength"
    fix_threshold: float = 0.95
    candidate_window: int | None = None  # None = auto by fabric size
    time_limit_s: float | None = 60.0
    #: Relative MIP gap at which the solver may stop.  The re-mapping model
    #: needs a *good feasible* floorplan, not a proven-optimal one; a
    #: generous gap cuts branch-and-bound time by an order of magnitude.
    mip_rel_gap: float | None = 0.30
    #: How to turn the (fractional) LP solution into the final binding:
    #: "ilp"    — the paper's residual ILP, always;
    #: "greedy" — LP-guided greedy completion (stress/slot feasible by
    #:            construction; timing re-verified by Algorithm 1's STA);
    #: "auto"   — greedy first on large models (where an open single-core
    #:            MIP solver cannot find an incumbent within the time
    #:            limit, unlike the paper's CPLEX), ILP fallback/default.
    completion: str = "auto"
    #: Binary-variable count above which "auto" prefers the greedy pass.
    greedy_threshold: int = 6000
    seed: int = 2020
    #: Race solver lanes per solve instead of betting on one backend
    #: (:class:`repro.portfolio.PortfolioBackend`).  The first answer to
    #: pass independent certification wins; losers are cancelled.
    portfolio: bool = False
    #: Lane order when racing; the first healthy lane leads.
    lanes: tuple[str, ...] = ("highs", "branch-bound", "prober")
    #: Backup lanes start this many seconds after the leader (released
    #: early when every started lane has failed).  On models the leader
    #: finishes inside this window, backups never start — which is what
    #: keeps a healthy portfolio run bit-identical to a serial one.
    hedge_delay_s: float = 1.5
    #: Per-lane wall-clock budget; None caps lanes only by the flow
    #: deadline (and the solver's own ``time_limit_s``).
    lane_timeout_s: float | None = None

    def make_backend(self):
        if self.portfolio:
            # Imported lazily: repro.portfolio pulls in both backends,
            # and the serial path must not pay for that.
            from repro.portfolio import PortfolioBackend

            return PortfolioBackend(
                lanes=tuple(self.lanes),
                time_limit=self.time_limit_s,
                mip_rel_gap=self.mip_rel_gap,
                hedge_delay_s=self.hedge_delay_s,
                lane_timeout_s=self.lane_timeout_s,
            )
        return ScipyBackend(
            time_limit=self.time_limit_s, mip_rel_gap=self.mip_rel_gap
        )

    def resolved_window(self, fabric: Fabric) -> int | None:
        if self.candidate_window is not None:
            return self.candidate_window
        return None if fabric.num_pes <= FULL_CANDIDATE_LIMIT else FULL_CANDIDATE_LIMIT


@dataclass
class WarmStart:
    """Incumbent hints carried across Algorithm 1's relaxation iterations.

    ``fixing`` is the LP→ILP pre-mapped binding of the previous solve
    (op → PE of every fixed one-hot group); ``values`` the previous
    solution's variable values, valid across iterations because the model
    — and therefore its ``Variable`` objects — is reused; ``reason`` the
    verdict of the iteration that produced the hint (hints are only
    *acted* on after an ``"infeasible"`` verdict: re-using the binding of
    a CPD-violating solve would just reproduce the violation).
    """

    fixing: dict[int, int] = field(default_factory=dict)
    values: Mapping | None = None
    reason: str = ""


@dataclass
class RemapOutcome:
    """Result of one re-mapping solve at a fixed ST_target."""

    feasible: bool
    assignment: dict[int, int] = field(default_factory=dict)  # movable op -> PE
    stats: dict = field(default_factory=dict)
    #: Hint for the *next* solve of the same (re-stamped) model, when the
    #: strategy produced one (two-step ILP paths only).
    warm: "WarmStart | None" = None
    #: The backend :class:`~repro.milp.status.Solution` behind
    #: ``assignment``, when one exists — greedy completions and the
    #: sequential decomposition assemble the binding without a single
    #: model-wide solution.  Consumed by :mod:`repro.verify` to re-check
    #: feasibility row-by-row against the uncompiled model.
    solution: object | None = None

    def floorplan(self, original: Floorplan, frozen: FrozenPlan) -> Floorplan:
        """Materialise the re-mapped floorplan."""
        if not self.feasible:
            raise ModelError("cannot build a floorplan from an infeasible outcome")
        bindings = dict(self.assignment)
        bindings.update(frozen.positions)
        return original.with_bindings(bindings)


def default_candidates(
    design: MappedDesign,
    original: Floorplan,
    frozen: FrozenPlan,
    fabric: Fabric,
    window: int | None,
) -> dict[int, list[int]]:
    """Candidate PE sets for every movable op.

    Guarantees: the op's original PE is a candidate whenever it is not
    taken by a frozen op of the same context; sets are deterministic.
    """
    frozen_slots: dict[int, set[int]] = {}
    for op_id, pe_index in frozen.positions.items():
        context = design.ops[op_id].context
        frozen_slots.setdefault(context, set()).add(pe_index)

    candidates: dict[int, list[int]] = {}
    num_pes = fabric.num_pes
    for op_id in sorted(design.ops):
        if op_id in frozen.positions:
            continue
        context = design.ops[op_id].context
        blocked = frozen_slots.get(context, ())
        origin = original.pe_of[op_id]
        if window is None or window >= num_pes:
            chosen = [k for k in range(num_pes) if k not in blocked]
        else:
            nearest = fabric.indices_by_distance(origin)[:window]
            # Deterministic spread: a per-op phase over a coarse stride so
            # far-away idle PEs remain reachable for stress export.
            spread_count = max(8, window // 2)
            stride = max(1, num_pes // spread_count)
            spread = range((op_id * 7) % stride, num_pes, stride)
            merged = dict.fromkeys([origin, *nearest, *spread])
            chosen = [k for k in merged if k not in blocked]
        if not chosen:
            raise ModelError(
                f"op {op_id} has no available candidate PEs in context {context}"
            )
        candidates[op_id] = chosen
    return candidates


def frozen_stress_by_pe(
    design: MappedDesign, frozen: FrozenPlan
) -> dict[int, float]:
    """Accumulated stress contributed by frozen ops, per PE."""
    result: dict[int, float] = {}
    for op_id, pe_index in frozen.positions.items():
        result[pe_index] = result.get(pe_index, 0.0) + design.ops[op_id].stress_ns
    return result


def build_remap_model(
    design: MappedDesign,
    fabric: Fabric,
    frozen: FrozenPlan,
    candidates: Mapping[int, Sequence[int]],
    monitored_paths: Sequence[MonitoredPath],
    cpd_ns: float,
    st_target_ns: float,
    name: str = "remap",
    objective: str = "wirelength",
    objective_known_only: bool = False,
) -> tuple[Model, RemapVariables, dict]:
    """Assemble Eq. (3) for one ``ST_target``; returns model + variables + stats."""
    with span("milp_build", model=name) as build_span:
        model = Model(name)
        variables = add_assignment_variables(model, candidates, design)
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        add_stress_constraints(
            variables,
            design,
            fabric.num_pes,
            st_target_ns,
            frozen_stress_by_pe(design, frozen),
            fabric=fabric,
        )
        endpoints = collect_endpoints(monitored_paths)
        build_coordinates(variables, design, fabric, frozen.positions, endpoints)
        added, frozen_violations = add_path_constraints(
            variables, design, fabric, monitored_paths, cpd_ns
        )
        if objective == "wirelength":
            add_wirelength_objective(
                variables, design, fabric, frozen.positions,
                known_only=objective_known_only,
            )
        elif objective != "null":
            raise ModelError(f"unknown objective {objective!r}")
        stats = {
            "variables": model.num_variables,
            "binaries": model.num_binary,
            "constraints": model.num_constraints,
            "path_constraints": added,
            "frozen_path_violations": frozen_violations,
        }
        build_span.set(**stats)
    counter("milp.models_built").inc()
    gauge("milp.model.binaries").set(model.num_binary)
    gauge("milp.model.constraints").set(model.num_constraints)
    return model, variables, stats


def restamp_remap_model(model: Model, st_target_ns: float) -> None:
    """Re-aim an assembled Eq. (3) model at a new ``ST_target``.

    The stress constraints are registered against the ``"st_target"``
    parameter at build time, so this is an O(stress rows) RHS re-stamp on
    the cached lowering — no expression re-traversal, no new model.  Any
    pre-mapping fixes from the previous solve are reopened first.
    """
    with span("milp_restamp", model=model.name, st_target_ns=st_target_ns):
        model.unfix_all()
        model.set_parameter("st_target", st_target_ns)
    counter("milp.models_restamped").inc()


def _apply_fixing(
    model: Model, variables: RemapVariables, fixing: Mapping[int, int]
) -> bool:
    """Re-apply a previous iteration's pre-mapping (op → PE) to ``model``.

    Validates the whole binding against the current candidate sets before
    touching any bounds, so a stale hint leaves the model untouched.
    Returns False when any op or PE is unknown.
    """
    resolved = []  # (group members, winner variable) per op
    for op_id, pe_index in fixing.items():
        members = variables.assign.get(op_id)
        if members is None:
            return False
        winner = next((var for var, pe in members if pe == pe_index), None)
        if winner is None:
            return False
        resolved.append((members, winner))
    for members, winner in resolved:
        model.fix_variable(winner, 1.0)
        for var, _pe in members:
            if var is not winner:
                model.fix_variable(var, 0.0)
    return True


def _fixed_assignment(
    model: Model, variables: RemapVariables
) -> dict[int, int]:
    """The op → PE binding currently pinned on ``model`` (LP pre-mapping)."""
    fixed = model.fixed_variables
    binding: dict[int, int] = {}
    for op_id, members in variables.assign.items():
        for var, pe_index in members:
            if fixed.get(var) == 1.0:
                binding[op_id] = pe_index
                break
    return binding


@dataclass
class GreedyContext:
    """Inputs the LP-guided greedy completion needs beyond the model.

    ``frozen_stress_ns`` is the per-PE stress baseline already committed
    (frozen ops, and configuration carryover in rotation sets).
    """

    design: MappedDesign
    fabric: Fabric
    frozen_positions: Mapping[int, int]
    st_target_ns: float
    frozen_stress_ns: Mapping[int, float]

    #: Score bonus (grid units of wirelength) for following the LP mass.
    lp_bias: float = 2.0


def _greedy_complete(
    variables: RemapVariables,
    lp_solution,
    ctx: GreedyContext,
) -> dict[int, int] | None:
    """LP-guided greedy binding of every movable op.

    Ops are placed context by context in dependency (chain) order, so
    producers precede their consumers and combinational chains stay local
    — the property that protects the CPD.  Each op takes the feasible
    candidate PE (slot free in its context, stress budget respected)
    minimising the weighted wire cost to already-placed neighbours (intra-
    context combinational wires weigh most) minus ``lp_bias * LP mass``.
    Returns None on a dead end (caller falls back to the ILP).
    """
    import heapq

    design, fabric = ctx.design, ctx.fabric
    stress = {pe: float(v) for pe, v in ctx.frozen_stress_ns.items()}
    slots: set[tuple[int, int]] = set()
    positions: dict[int, tuple[float, float]] = {}
    for op_id, pe_index in ctx.frozen_positions.items():
        context = design.ops[op_id].context
        slots.add((context, pe_index))
        pe = fabric.pe(pe_index)
        positions[op_id] = (float(pe.row), float(pe.col))

    # Neighbour lists with weights: intra-context (combinational) wires
    # carry path delay, so they dominate the cost; register reads and pad
    # wires only matter for congestion.
    neighbors: dict[int, list[tuple[object, float]]] = {
        op: [] for op in variables.assign
    }
    for src, dst in design.compute_edges:
        weight = (
            3.0 if design.ops[src].context == design.ops[dst].context else 1.0
        )
        if src in neighbors:
            neighbors[src].append((dst, weight))
        if dst in neighbors:
            neighbors[dst].append((src, weight))
    for ordinal, dst in design.input_edges:
        if dst in neighbors:
            pad = fabric.input_pad(ordinal)
            neighbors[dst].append(((pad.row, pad.col), 0.5))
    for src, ordinal in design.output_edges:
        if src in neighbors:
            pad = fabric.output_pad(ordinal)
            neighbors[src].append(((pad.row, pad.col), 0.5))

    # Context-major, chain-order placement sequence.
    preds_in_context: dict[int, list[int]] = {op: [] for op in variables.assign}
    for src, dst in design.compute_edges:
        if (
            dst in preds_in_context
            and src in preds_in_context
            and design.ops[src].context == design.ops[dst].context
        ):
            preds_in_context[dst].append(src)
    order: list[int] = []
    for context in range(design.num_contexts):
        context_ops = sorted(
            op for op in variables.assign
            if design.ops[op].context == context
        )
        remaining = {op: len(preds_in_context[op]) for op in context_ops}
        succs: dict[int, list[int]] = {op: [] for op in context_ops}
        for op in context_ops:
            for pred in preds_in_context[op]:
                succs[pred].append(op)
        ready = [op for op, count in remaining.items() if count == 0]
        heapq.heapify(ready)
        while ready:
            op = heapq.heappop(ready)
            order.append(op)
            for succ in succs[op]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)

    assignment: dict[int, int] = {}
    for op_id in order:
        op = design.ops[op_id]
        placed_neighbors = []
        for item, weight in neighbors[op_id]:
            if isinstance(item, tuple):
                placed_neighbors.append((item, weight))
            elif item in positions:
                placed_neighbors.append((positions[item], weight))
        best = None
        for var, pe_index in variables.assign[op_id]:
            if (op.context, pe_index) in slots:
                continue
            if stress.get(pe_index, 0.0) + op.stress_ns > ctx.st_target_ns + 1e-9:
                continue
            pe = fabric.pe(pe_index)
            wire = sum(
                weight * (abs(pe.row - point[0]) + abs(pe.col - point[1]))
                for point, weight in placed_neighbors
            )
            mass = lp_solution.value(var, 0.0)
            score = (wire - ctx.lp_bias * mass, pe_index)
            if best is None or score < best[0]:
                best = (score, pe_index)
        if best is None:
            return None
        pe_index = best[1]
        assignment[op_id] = pe_index
        slots.add((op.context, pe_index))
        stress[pe_index] = stress.get(pe_index, 0.0) + op.stress_ns
        pe = fabric.pe(pe_index)
        positions[op_id] = (float(pe.row), float(pe.col))
    return assignment


def solve_remap(
    model: Model,
    variables: RemapVariables,
    config: RemapConfig,
    backend: ScipyBackend | None = None,
    greedy_context: "GreedyContext | None" = None,
    warm: "WarmStart | None" = None,
) -> RemapOutcome:
    """Run the configured strategy on an assembled model.

    ``greedy_context`` enables the LP-guided greedy completion on large
    models (see :class:`GreedyContext`); without it the residual is always
    solved as an ILP, exactly as in the paper.  ``warm`` carries the
    previous iteration's hints when the same model is re-solved after an
    ``ST_target`` re-stamp (see :class:`WarmStart`).
    """
    backend = backend or config.make_backend()
    if config.strategy == "monolithic":
        return _solve_monolithic(model, variables, backend, warm)
    if config.strategy == "two-step":
        return _solve_two_step(
            model, variables, config, backend, greedy_context, warm
        )
    raise ModelError(f"unknown remap strategy {config.strategy!r}")


def require_not_error(solution) -> None:
    """Raise :class:`SolverError` on ERROR/UNBOUNDED no-solution outcomes.

    Proven infeasibility is a *model* property and drives Algorithm 1's
    relax loop; a time limit without incumbent, a solver crash or an
    unbounded model is a *solver* failure — distinguishing them lets the
    degradation ladder engage instead of relaxing ``ST_target`` forever
    against a solver that cannot answer.
    """
    if (
        not solution.status.has_solution
        and solution.status is not SolveStatus.INFEASIBLE
    ):
        solution.require()


def _extract(variables: RemapVariables, solution) -> dict[int, int]:
    groups = {
        op_id: [(var, pe) for var, pe in members]
        for op_id, members in variables.assign.items()
    }
    return extract_assignment(groups, solution)


def _solve_stats_dict(solution) -> dict | None:
    """The :class:`~repro.obs.solverstats.SolveStats` record of a solve,
    as a JSON-ready dict (``None`` when the backend attached none)."""
    return solution.stats.to_dict() if solution.stats is not None else None


def _solve_monolithic(
    model: Model,
    variables: RemapVariables,
    backend: ScipyBackend,
    warm: "WarmStart | None" = None,
) -> RemapOutcome:
    options: dict = {}
    if warm is not None and warm.reason == "infeasible" and warm.values:
        # The previous solution of this (re-stamped) model seeds the
        # solver's incumbent where the backend supports it.
        options["warm_start"] = warm.values
    with span("milp_solve", strategy="monolithic") as solve_span:
        solution = model.solve(backend, **options)
        elapsed = solve_span.duration_s
        solve_span.set(status=solution.status.value)
        require_not_error(solution)
    stats = {
        "strategy": "monolithic", "solve_s": elapsed,
        "status": solution.status.value,
        "solve_stats": _solve_stats_dict(solution),
    }
    if not solution.status.has_solution:
        return RemapOutcome(feasible=False, stats=stats)
    return RemapOutcome(
        feasible=True,
        assignment=_extract(variables, solution),
        stats=stats,
        warm=WarmStart(values=dict(solution.values)),
        solution=solution,
    )


def _solve_two_step(
    model: Model,
    variables: RemapVariables,
    config: RemapConfig,
    backend: ScipyBackend,
    greedy_context: "GreedyContext | None" = None,
    warm: "WarmStart | None" = None,
) -> RemapOutcome:
    """The paper's LP-relax -> pre-map -> residual-ILP pipeline.

    On large models (``completion="auto"``/"greedy" with a context), the
    residual ILP is replaced by an LP-guided greedy completion: open
    single-core MIP solvers often cannot produce *any* incumbent on a
    10k+-binary model within the iteration budget, while the paper's
    CPLEX could.  The greedy result satisfies exclusivity and the stress
    budget by construction; path delays are re-verified by Algorithm 1's
    full STA pass, which gates every accepted floorplan anyway.

    When ``warm`` carries the pre-mapping of a previous (infeasible)
    iteration, that binding is tried first under the freshly re-stamped
    stress budget: a hit skips the LP relaxation and most of the ILP
    search; a miss reopens the fixes and falls through to the cold path.
    """
    stats: dict = {"strategy": "two-step", "rounding": config.rounding}

    with span("milp_solve", strategy="two-step") as solve_span:
        if (
            warm is not None
            and warm.reason == "infeasible"
            and warm.fixing
            and config.rounding == "threshold"
            and _apply_fixing(model, variables, warm.fixing)
        ):
            with span("ilp_warm_fixing", groups_fixed=len(warm.fixing)):
                trial = model.solve(backend, warm_start=warm.values)
            stats["warm_fixing"] = len(warm.fixing)
            stats["ilp_s"] = trial.solve_seconds
            stats["ilp_status"] = trial.status.value
            stats["ilp_stats"] = _solve_stats_dict(trial)
            if trial.status.has_solution:
                counter("milp.warm_fixing_hits").inc()
                stats["status"] = "ok"
                solve_span.set(status="ok", completion="warm_fixing")
                return RemapOutcome(
                    feasible=True,
                    assignment=_extract(variables, trial),
                    stats=stats,
                    warm=WarmStart(
                        fixing=dict(warm.fixing), values=dict(trial.values)
                    ),
                    solution=trial,
                )
            # Miss (still infeasible, or a solver limit): reopen the fixes
            # and run the cold LP→ILP pipeline on the same model.
            counter("milp.warm_fixing_misses").inc()
            model.unfix_all()
            stats["warm_fixing_retry"] = True
        with span("lp_relax"):
            relaxed = model.relaxed()
            lp_solution = relaxed.solve(backend)
            relaxed.restore_types()
        stats["lp_s"] = lp_solution.solve_seconds
        stats["lp_status"] = lp_solution.status.value
        stats["lp_stats"] = _solve_stats_dict(lp_solution)
        require_not_error(lp_solution)
        if not lp_solution.status.has_solution:
            stats["status"] = "lp_" + lp_solution.status.value
            solve_span.set(status=stats["status"])
            return RemapOutcome(feasible=False, stats=stats)

        use_greedy = greedy_context is not None and (
            config.completion == "greedy"
            or (
                config.completion == "auto"
                and model.num_binary > config.greedy_threshold
            )
        )
        if use_greedy:
            with span("greedy_complete"):
                assignment = _greedy_complete(
                    variables, lp_solution, greedy_context
                )
            stats["completion"] = "greedy"
            if assignment is not None:
                stats["status"] = "ok"
                solve_span.set(status="ok", completion="greedy")
                return RemapOutcome(
                    feasible=True, assignment=assignment, stats=stats
                )
            counter("milp.greedy_completion_failures").inc()
            stats["greedy_failed"] = True  # fall through to the ILP

        groups = variables.groups()
        if config.rounding == "threshold":
            report = threshold_fix(
                model, groups, lp_solution, config.fix_threshold
            )
        elif config.rounding == "randomized":
            report = randomized_round(
                model, groups, lp_solution, random.Random(config.seed)
            )
        else:
            raise ModelError(f"unknown rounding strategy {config.rounding!r}")
        stats["groups_fixed"] = report.groups_fixed
        stats["groups_total"] = report.groups_total
        stats["fixed_fraction"] = report.fraction_fixed
        stats["vars_fixed"] = report.variables_fixed
        stats["vars_free"] = report.variables_free

        with span("ilp_fix", groups_fixed=report.groups_fixed):
            ilp_solution = model.solve(backend)
        if ilp_solution.stats is not None:
            # The residual-ILP record carries the LP->ILP pre-mapping
            # outcome, so one SolveStats tells the whole two-step story.
            ilp_solution.stats.record_fixing(
                groups_total=report.groups_total,
                groups_fixed=report.groups_fixed,
                vars_fixed=report.variables_fixed,
                vars_free=report.variables_free,
                threshold=report.details.get("threshold", config.fix_threshold),
            )
        stats["ilp_s"] = ilp_solution.solve_seconds
        stats["ilp_status"] = ilp_solution.status.value
        stats["ilp_stats"] = _solve_stats_dict(ilp_solution)
        require_not_error(ilp_solution)
        # The LP's >threshold pre-mapping is the hint for the next solve of
        # this model: after an infeasible verdict Algorithm 1 relaxes the
        # budget and the same binding is retried first.
        binding = _fixed_assignment(model, variables)
        if not ilp_solution.status.has_solution:
            stats["status"] = "ilp_" + ilp_solution.status.value
            solve_span.set(status=stats["status"])
            return RemapOutcome(
                feasible=False, stats=stats, warm=WarmStart(fixing=binding)
            )
        stats["status"] = "ok"
        solve_span.set(status="ok", completion="ilp")
    return RemapOutcome(
        feasible=True,
        assignment=_extract(variables, ilp_solution),
        stats=stats,
        warm=WarmStart(fixing=binding, values=dict(ilp_solution.values)),
        solution=ilp_solution,
    )


def solve_remap_sequential(
    design: MappedDesign,
    fabric: Fabric,
    frozen: FrozenPlan,
    candidates: Mapping[int, Sequence[int]],
    monitored_paths: Sequence[MonitoredPath],
    cpd_ns: float,
    st_target_ns: float,
    config: RemapConfig,
    backend: ScipyBackend | None = None,
) -> RemapOutcome:
    """Per-context decomposition (ablation strategy).

    Contexts are solved in increasing order; each context sees the stress
    already committed by frozen ops and earlier contexts as a fixed
    baseline.  Data always flows forward in time, so by solving in context
    order every path entry endpoint from an earlier context is already a
    constant.
    """
    backend = backend or config.make_backend()
    committed = FrozenPlan(
        positions=dict(frozen.positions),
        orientation_of_context=dict(frozen.orientation_of_context),
    )
    assignment: dict[int, int] = {}
    stats: dict = {"strategy": "sequential", "contexts": []}
    for context in range(design.num_contexts):
        context_ops = {
            op_id: list(candidates[op_id])
            for op_id in candidates
            if design.ops[op_id].context == context
        }
        if not context_ops:
            continue
        context_paths = [
            mp for mp in monitored_paths if mp.path.context == context
        ]
        try:
            model, variables, build_stats = build_remap_model(
                design,
                fabric,
                committed,
                context_ops,
                context_paths,
                cpd_ns,
                st_target_ns,
                name=f"remap_ctx{context}",
                objective=config.objective,
                objective_known_only=True,
            )
        except BudgetInfeasibleError as exc:
            stats["status"] = f"budget_infeasible_at_context_{context}: {exc}"
            return RemapOutcome(feasible=False, stats=stats)
        greedy_ctx = GreedyContext(
            design=design,
            fabric=fabric,
            frozen_positions=committed.positions,
            st_target_ns=st_target_ns,
            frozen_stress_ns=frozen_stress_by_pe(design, committed),
        )
        with span("milp_context", context=context):
            outcome = _solve_two_step(
                model, variables, config, backend, greedy_ctx
            )
        stats["contexts"].append(
            {"context": context, **build_stats, **outcome.stats}
        )
        if not outcome.feasible:
            stats["status"] = f"infeasible_at_context_{context}"
            _log.debug("sequential remap infeasible at context %d", context)
            return RemapOutcome(feasible=False, stats=stats)
        assignment.update(outcome.assignment)
        for op_id, pe_index in outcome.assignment.items():
            committed.positions[op_id] = pe_index
    stats["status"] = "ok"
    return RemapOutcome(feasible=True, assignment=assignment, stats=stats)
