"""Deadline budgets: scoping, checks, shielding, solver-limit capping."""

from __future__ import annotations

import math

import pytest

from repro.errors import DeadlineExceededError
from repro.resilience import (
    Deadline,
    current_deadline,
    deadline_scope,
    shielded,
)
from repro.resilience.deadline import MIN_SOLVER_LIMIT_S


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.bounded
        assert not deadline.expired
        assert deadline.remaining_s() == math.inf
        deadline.check("anywhere")  # must not raise

    def test_bounded_expires(self):
        deadline = Deadline.after(0.0)
        assert deadline.bounded
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("stage_x")
        assert excinfo.value.stage == "stage_x"
        assert excinfo.value.budget_s == 0.0
        assert excinfo.value.elapsed_s >= 0.0

    def test_generous_budget_passes(self):
        deadline = Deadline.after(3600.0)
        assert not deadline.expired
        deadline.check("ok")
        assert 0.0 < deadline.remaining_s() <= 3600.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_error_message_names_stage_and_budget(self):
        with pytest.raises(DeadlineExceededError, match="milp") as excinfo:
            Deadline.after(0.0).check("milp")
        assert "0.000s" in str(excinfo.value)


class TestCap:
    def test_unlimited_is_identity(self):
        deadline = Deadline.unlimited()
        assert deadline.cap(12.5) == 12.5
        assert deadline.cap(None) is None

    def test_caps_to_remaining(self):
        deadline = Deadline.after(3600.0)
        assert deadline.cap(7200.0) < 3600.0 + 1e-6
        assert deadline.cap(1.0) == 1.0

    def test_none_limit_becomes_remaining(self):
        capped = Deadline.after(10.0).cap(None)
        assert capped is not None
        assert 0.0 < capped <= 10.0

    def test_expired_floors_at_minimum(self):
        assert Deadline.after(0.0).cap(60.0) == MIN_SOLVER_LIMIT_S


class TestScope:
    def test_default_is_unlimited(self):
        assert not current_deadline().bounded

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(5.0)
        with deadline_scope(deadline) as scoped:
            assert scoped is deadline
            assert current_deadline() is deadline
        assert not current_deadline().bounded

    def test_none_passes_through_enclosing(self):
        outer = Deadline.after(5.0)
        with deadline_scope(outer):
            with deadline_scope(None) as inner:
                assert inner is outer
                assert current_deadline() is outer

    def test_nested_scopes_stack(self):
        outer, inner = Deadline.after(9.0), Deadline.after(1.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer


class TestShielded:
    def test_shielded_check_does_not_raise(self):
        deadline = Deadline.after(0.0)
        with deadline_scope(deadline):
            with shielded():
                current_deadline().check("phase1")  # must not raise
            with pytest.raises(DeadlineExceededError):
                current_deadline().check("phase2")

    def test_expired_property_still_true_inside_shield(self):
        deadline = Deadline.after(0.0)
        with shielded():
            assert deadline.expired
